// Minimal streaming JSON writer for structured bench output.
//
// The benches emit machine-readable metrics (BENCH_<exhibit>.json) next
// to their human-readable tables; a hand-rolled writer keeps the project
// dependency-free. Output is pretty-printed with two-space indentation,
// strings are escaped per RFC 8259, and doubles are printed with the
// shortest decimal form that round-trips, so files are stable across
// runs and diffable.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace corropt::common {

// Escapes `s` for inclusion in a JSON string literal (no surrounding
// quotes added).
[[nodiscard]] std::string json_escape(std::string_view s);

// Shortest decimal representation that parses back to exactly `v`.
// Non-finite values have no JSON encoding and are emitted as null by the
// writer; this helper returns "null" for them as well.
[[nodiscard]] std::string json_number(double v);

class JsonWriter {
 public:
  // The writer does not own the stream; it must outlive the writer.
  explicit JsonWriter(std::ostream& out) : out_(out) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  // Writes the member key; must be inside an object and followed by
  // exactly one value (or container).
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& null();

  // key + scalar value in one call.
  template <typename T>
  JsonWriter& member(std::string_view k, const T& v) {
    key(k);
    return value(v);
  }

  // key + array of doubles, written on one line (used for long series).
  JsonWriter& member(std::string_view k, const std::vector<double>& v);

 private:
  enum class Scope { kObject, kArray };

  // Emits the separating comma/newline/indent due before a value or key.
  void prefix();

  std::ostream& out_;
  std::vector<Scope> stack_;
  // Whether the current scope has already emitted an element.
  std::vector<bool> dirty_;
  // A key was just written; the next value follows ": " on the same line.
  bool after_key_ = false;
};

}  // namespace corropt::common
