// Deterministic random number generation.
//
// Every stochastic component takes an explicit Rng so that whole scenarios
// are reproducible from a single seed. The generator is xoshiro256**,
// which is fast, has 256 bits of state, and passes BigCrush; distribution
// helpers mirror the subset of <random> the project needs without the
// cross-platform non-determinism of the standard distributions.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "common/snapshot.h"

namespace corropt::common {

class Rng {
 public:
  using result_type = std::uint64_t;

  // Seeds the state via splitmix64 so that nearby seeds give unrelated
  // streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()();

  // Derives an independent child generator; used to give each subsystem
  // its own stream so that adding draws in one does not perturb another.
  [[nodiscard]] Rng fork();

  // Uniform double in [0, 1).
  double uniform();
  // Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  // Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);
  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  // Bernoulli trial with success probability p (clamped to [0, 1]).
  bool bernoulli(double p);
  // Standard normal via Marsaglia polar method.
  double normal();
  double normal(double mean, double stddev);
  // Log-uniform in [lo, hi); requires 0 < lo < hi.
  double log_uniform(double lo, double hi);
  // Exponential with the given mean (> 0).
  double exponential(double mean);
  // Poisson with the given mean (>= 0); exact for small means, normal
  // approximation above 64.
  std::uint64_t poisson(double mean);
  // Samples an index according to non-negative weights (at least one > 0).
  std::size_t weighted_index(std::span<const double> weights);

  // Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[uniform_index(i)]);
    }
  }

  // Samples k distinct indices from [0, n) (k <= n), in random order.
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

  // Checkpointing (DESIGN.md §14): the complete generator state — the
  // four xoshiro words plus the Marsaglia cached second normal, which
  // is genuine hidden state (dropping it would shift every later
  // normal() draw by one).
  void snapshot_to(snap::Writer& w) const;
  void restore_from(snap::Reader& r);

 private:
  std::array<std::uint64_t, 4> state_{};
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

// Counter-based generator for shard-parallel synthesis.
//
// Rng is a sequential stream: every draw depends on how many draws came
// before it, so splitting work across threads perturbs the output unless
// the iteration order is frozen. CounterRng is keyed instead: the triple
// (seed, stream, counter) — e.g. (study seed, direction id, epoch start)
// — fully determines the values drawn, so any sample of a sharded
// computation is independently computable in any order on any thread.
// The key is hashed through three rounds of the splitmix64 finalizer
// (the same mixer bench::derive_seed uses) and draws then walk the
// splitmix64 sequence from that point, which keeps distinct keys on
// statistically unrelated subsequences.
//
// The distribution helpers use the same algorithms as Rng (53-bit
// uniform, Marsaglia polar normal, Knuth/normal-approximation Poisson)
// but are not sequence-compatible with it; code that depends on Rng's
// historical draw sequence is unaffected by this class.
class CounterRng {
 public:
  using result_type = std::uint64_t;

  CounterRng(std::uint64_t seed, std::uint64_t stream,
             std::uint64_t counter);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()();

  // Uniform double in [0, 1).
  double uniform();
  // Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  // Bernoulli trial with success probability p (clamped to [0, 1]).
  bool bernoulli(double p);
  // Standard normal via Marsaglia polar method (no cached second value:
  // keyed draws are cheap and statelessness keeps samples independent).
  double normal();
  double normal(double mean, double stddev);
  // Poisson with the given mean (>= 0); exact for small means, normal
  // approximation above 64 — the same split Rng::poisson uses.
  std::uint64_t poisson(double mean);

 private:
  std::uint64_t x_ = 0;
};

}  // namespace corropt::common
