// Simulation time.
//
// All simulated clocks run on integer seconds since the start of the
// scenario. The paper's monitoring system polls SNMP counters every
// 15 minutes and its repair queue is measured in days, so one-second
// resolution is ample while keeping arithmetic exact.
#pragma once

#include <cstdint>

namespace corropt::common {

// Seconds since scenario start.
using SimTime = std::int64_t;
// A span of simulated seconds.
using SimDuration = std::int64_t;

inline constexpr SimDuration kSecond = 1;
inline constexpr SimDuration kMinute = 60 * kSecond;
inline constexpr SimDuration kHour = 60 * kMinute;
inline constexpr SimDuration kDay = 24 * kHour;
inline constexpr SimDuration kWeek = 7 * kDay;

// The paper's SNMP polling interval (Section 2).
inline constexpr SimDuration kPollInterval = 15 * kMinute;

// Average ticket service time observed in the paper's DCNs (Section 5.2).
inline constexpr SimDuration kMeanRepairTime = 2 * kDay;

[[nodiscard]] constexpr double to_days(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kDay);
}

[[nodiscard]] constexpr double to_hours(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kHour);
}

}  // namespace corropt::common
