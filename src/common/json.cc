#include "common/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace corropt::common {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  // JSON requires a leading digit before the exponent/point; %g already
  // guarantees that, but bare integers like "1e+20" are fine too.
  return buf;
}

JsonWriter& JsonWriter::begin_object() {
  prefix();
  out_ << '{';
  stack_.push_back(Scope::kObject);
  dirty_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  const bool had_members = dirty_.back();
  stack_.pop_back();
  dirty_.pop_back();
  if (had_members) {
    out_ << '\n' << std::string(2 * stack_.size(), ' ');
  }
  out_ << '}';
  if (stack_.empty()) out_ << '\n';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  prefix();
  out_ << '[';
  stack_.push_back(Scope::kArray);
  dirty_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  const bool had_elements = dirty_.back();
  stack_.pop_back();
  dirty_.pop_back();
  if (had_elements) {
    out_ << '\n' << std::string(2 * stack_.size(), ' ');
  }
  out_ << ']';
  if (stack_.empty()) out_ << '\n';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  prefix();
  out_ << '"' << json_escape(k) << "\": ";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  prefix();
  out_ << '"' << json_escape(v) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  prefix();
  out_ << json_number(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  prefix();
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  prefix();
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  prefix();
  out_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::null() {
  prefix();
  out_ << "null";
  return *this;
}

JsonWriter& JsonWriter::member(std::string_view k,
                               const std::vector<double>& v) {
  key(k);
  // Long numeric series stay on one line to keep files scannable.
  after_key_ = false;
  out_ << '[';
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i != 0) out_ << ", ";
    out_ << json_number(v[i]);
  }
  out_ << ']';
  return *this;
}

void JsonWriter::prefix() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (stack_.empty()) return;
  if (dirty_.back()) out_ << ',';
  out_ << '\n' << std::string(2 * stack_.size(), ' ');
  dirty_.back() = true;
}

}  // namespace corropt::common
