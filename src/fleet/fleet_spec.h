// Fleet description: N heterogeneous data centers in one campaign.
//
// The paper's headline deployment result (Section 7) comes from running
// CorrOpt across 70 production data centers of different sizes, ages, and
// fault profiles. A FleetSpec captures that: each DcSpec names one DC's
// topology shape (the paper's large/medium Clos designs or a custom XGFT),
// its fault mix (per-DC root-cause contributions vary across the Table 2
// ranges — the observation 007 [Arzani et al.] makes democratically), and
// its mitigation configuration.
//
// Determinism contract: every random choice a DC makes is a pure function
// of (FleetSpec::seed, DcSpec::key, stream) through the same counter-keyed
// splitmix64 derivation common::CounterRng and bench::derive_seed use.
// Keys are stable identifiers, not positions, so shuffling the `dcs`
// vector, adding DCs, or changing thread counts cannot perturb any DC's
// trace or simulation — see DESIGN.md §11.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.h"
#include "sim/scenario_config.h"
#include "topology/topology.h"
#include "topology/xgft.h"
#include "trace/trace.h"

namespace corropt::fleet {

// Which builder shapes a DC's topology.
enum class DcShape {
  kLargeDcn,   // the paper's large evaluation DCN (~33K links)
  kMediumDcn,  // the paper's medium evaluation DCN (~16K links)
  kXgft,       // custom XGFT (leaf-spine, small fat-trees, deep trees)
};

[[nodiscard]] const char* shape_name(DcShape shape);

struct DcSpec {
  // Human-readable identifier, unique within a fleet; also the name of
  // the per-DC row in BENCH_fleet.json.
  std::string name;

  // Stable identity for seed derivation and canonical output order. All
  // randomness of this DC derives from (fleet seed, key), never from the
  // DC's position in FleetSpec::dcs — results are order-free.
  std::uint64_t key = 0;

  DcShape shape = DcShape::kMediumDcn;
  // Used when shape == kXgft; ignored otherwise.
  topology::XgftSpec xgft;
  // Breakout bundling applied after an XGFT build (the large/medium
  // builders bundle their own): group ToR uplinks (level 0) in bundles of
  // `tor_breakout` and level-1 uplinks in bundles of `agg_breakout`;
  // values < 2 disable that level's grouping.
  int tor_breakout = 2;
  int agg_breakout = 0;

  // Fault arrival process; `trace.duration` must equal `config.duration`
  // (the factories keep them in sync).
  trace::TraceParams trace;

  // Mitigation configuration. `config.seed` is ignored: FleetCampaign
  // derives the simulation seed from (fleet seed, key) so per-DC streams
  // never collide.
  sim::ScenarioConfig config;
};

struct FleetSpec {
  std::string name = "fleet";
  // Base seed; every DC's trace/sim seeds derive from this and its key.
  std::uint64_t seed = 1;
  std::vector<DcSpec> dcs;
};

// Named sub-streams of one DC's seed material.
enum class SeedStream : std::uint64_t {
  kTrace = 1,  // corruption-trace synthesis
  kSim = 2,    // MitigationSimulation's ScenarioConfig::seed
  kShape = 3,  // heterogeneity draws when building the spec itself
};

// Counter-keyed seed derivation: three splitmix64 finalizer rounds over
// (fleet_seed, dc_key, stream) — the same mixing CounterRng applies to
// its key triple — so any DC's streams are computable independently, in
// any order, on any thread.
[[nodiscard]] std::uint64_t derive_dc_seed(std::uint64_t fleet_seed,
                                           std::uint64_t dc_key,
                                           SeedStream stream);

// Builds the DC's topology fresh (simulations mutate link state, so
// instances are never shared).
[[nodiscard]] topology::Topology build_dc_topology(const DcSpec& dc);

// Expected link count of the spec without building it (sizing output and
// sanity checks).
[[nodiscard]] std::size_t expected_link_count(const DcSpec& dc);

// The paper's deployment, synthesized: `dc_count` heterogeneous DCs with
// shapes drawn from a palette (the two evaluation DCNs plus leaf-spine,
// small fat-tree, and 4-tier XGFT designs), fault densities and Table 2
// root-cause mixes varied per DC within the paper's reported ranges, and
// a per-DC capacity constraint from {0.5, 0.75, 0.875}. Every draw is
// keyed by (seed, dc key), so the same (dc_count, duration, seed) always
// yields the same fleet.
[[nodiscard]] FleetSpec make_deployment_fleet(std::size_t dc_count,
                                              common::SimDuration duration,
                                              std::uint64_t seed);

}  // namespace corropt::fleet
