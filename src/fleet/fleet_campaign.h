// Fleet campaign driver: shard whole-DC simulations, merge deterministically.
//
// Each DC in a FleetSpec is one independent job — build the topology,
// synthesize the corruption trace from the DC's derived trace seed, run a
// MitigationSimulation with the DC's derived sim seed — executed across a
// common::ThreadPool. Per-DC results are then ordered canonically (by
// DcSpec::key) and folded into fleet-level aggregates in that order, so
// both the per-DC rows and every floating-point sum are bit-identical for
// any thread count and any submission order of FleetSpec::dcs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fleet/fleet_spec.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "sim/metrics.h"

namespace corropt::fleet {

// Outcome of one DC's simulation.
struct DcResult {
  std::string name;
  std::uint64_t key = 0;
  DcShape shape = DcShape::kMediumDcn;
  // Detection backend the DC's config selected; tagged in the JSON row
  // only when non-default, so all-threshold fleets serialize unchanged.
  detect::BackendKind backend = detect::BackendKind::kThreshold;
  std::size_t link_count = 0;
  std::size_t switch_count = 0;
  std::size_t trace_events = 0;
  double capacity_fraction = 0.0;
  double faults_per_link_per_day = 0.0;
  sim::SimulationMetrics metrics;
  // Minimum over the run of the sampled worst-ToR spine-path fraction.
  double min_worst_tor_fraction = 1.0;
  // Wall-clock of this DC's job alone. Non-deterministic: printed in the
  // stdout table but never serialized into BENCH_fleet.json.
  double wall_seconds = 0.0;

  // Filled when the campaign ran with collect_obs.
  bool has_obs = false;
  obs::MetricsSnapshot obs_metrics;
  std::vector<obs::Event> journal;
  std::uint64_t journal_dropped = 0;
};

// Fleet-level aggregates, folded over DcResults in canonical key order.
struct FleetMetrics {
  std::size_t dc_count = 0;
  std::size_t total_links = 0;
  std::size_t total_switches = 0;
  std::size_t total_trace_events = 0;

  // Penalty (integrated over each DC's run, summed across the fleet).
  double integrated_penalty = 0.0;
  double mean_dc_penalty = 0.0;
  double max_dc_penalty = 0.0;
  double min_dc_penalty = 0.0;
  // Name of the DC with the largest integrated penalty.
  std::string worst_dc;

  // Availability. mean_tor_fraction weights each DC by its link count;
  // worst_tor_fraction is the fleet-wide minimum of the sampled per-DC
  // worst-ToR spine-path fraction.
  double mean_tor_fraction = 1.0;
  double worst_tor_fraction = 1.0;

  // Repair bookkeeping, summed.
  std::size_t faults_injected = 0;
  std::size_t tickets_opened = 0;
  std::size_t repair_attempts = 0;
  std::size_t first_attempts = 0;
  std::size_t first_attempt_successes = 0;
  std::size_t redetections = 0;
  std::size_t undisabled_detections = 0;
  // Tickets-weighted mean resolution time across DCs.
  double mean_ticket_resolution_s = 0.0;

  core::Controller::Stats controller;

  [[nodiscard]] double first_attempt_accuracy() const {
    return first_attempts == 0
               ? 0.0
               : static_cast<double>(first_attempt_successes) /
                     static_cast<double>(first_attempts);
  }
};

struct FleetResult {
  FleetMetrics fleet;
  // Canonical order: ascending DcSpec::key (name as tie-break).
  std::vector<DcResult> dcs;
};

struct CampaignOptions {
  std::size_t threads = 1;
  // Attach a per-DC obs sink (metrics registry + decision journal) and
  // return the folded snapshot/journal in each DcResult. Ignored for DCs
  // whose config already wired a sink.
  bool collect_obs = false;
};

class FleetCampaign {
 public:
  explicit FleetCampaign(FleetSpec spec);

  [[nodiscard]] const FleetSpec& spec() const { return spec_; }

  // Runs every DC and merges. Deterministic: the returned FleetResult is
  // identical for any options.threads and any order of spec().dcs.
  [[nodiscard]] FleetResult run(const CampaignOptions& options = {}) const;

 private:
  FleetSpec spec_;
};

// Runs one DC synchronously on the calling thread (also used by the
// campaign's workers): fresh topology, trace from the DC's kTrace seed,
// simulation with config.seed replaced by the DC's kSim seed.
[[nodiscard]] DcResult run_dc(const FleetSpec& fleet, const DcSpec& dc,
                              bool collect_obs = false);

// Folds per-DC results (already in canonical order) into FleetMetrics.
[[nodiscard]] FleetMetrics merge_results(const std::vector<DcResult>& dcs);

}  // namespace corropt::fleet
