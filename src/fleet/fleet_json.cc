#include "fleet/fleet_json.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/json.h"

namespace corropt::fleet {

namespace {

void write_dc_row(common::JsonWriter& json, const DcResult& dc) {
  json.begin_object();
  json.member("name", dc.name);
  json.key("tags").begin_object();
  json.member("shape", shape_name(dc.shape));
  json.member("key", dc.key);
  if (dc.backend != detect::BackendKind::kThreshold) {
    // Tagged only when non-default so all-threshold fleet documents
    // (BENCH_fleet.json) serialize byte-for-byte as before.
    json.member("backend", std::string(detect::backend_name(dc.backend)));
  }
  json.end_object();
  json.member("link_count", dc.link_count);
  json.member("switch_count", dc.switch_count);
  json.member("trace_events", dc.trace_events);
  json.member("capacity_fraction", dc.capacity_fraction);
  json.member("faults_per_link_per_day", dc.faults_per_link_per_day);
  json.key("metrics").begin_object();
  json.member("integrated_penalty", dc.metrics.integrated_penalty);
  json.member("mean_tor_fraction", dc.metrics.mean_tor_fraction);
  json.member("min_worst_tor_fraction", dc.min_worst_tor_fraction);
  json.member("faults_injected", dc.metrics.faults_injected);
  json.member("tickets_opened", dc.metrics.tickets_opened);
  json.member("repair_attempts", dc.metrics.repair_attempts);
  json.member("first_attempt_accuracy", dc.metrics.first_attempt_accuracy());
  json.member("mean_ticket_resolution_s",
              dc.metrics.mean_ticket_resolution_s);
  json.member("undisabled_detections", dc.metrics.undisabled_detections);
  json.key("controller").begin_object();
  json.member("corruption_reports", dc.metrics.controller.corruption_reports);
  json.member("disabled_on_arrival",
              dc.metrics.controller.disabled_on_arrival);
  json.member("disabled_on_activation",
              dc.metrics.controller.disabled_on_activation);
  json.member("tickets_issued", dc.metrics.controller.tickets_issued);
  json.member("optimizer_runs", dc.metrics.controller.optimizer_runs);
  json.end_object();
  json.end_object();
  json.end_object();
}

void write_fleet_aggregates(common::JsonWriter& json,
                            const FleetMetrics& fleet) {
  json.key("fleet").begin_object();
  json.member("dc_count", fleet.dc_count);
  json.member("total_links", fleet.total_links);
  json.member("total_switches", fleet.total_switches);
  json.member("total_trace_events", fleet.total_trace_events);
  json.member("integrated_penalty", fleet.integrated_penalty);
  json.member("mean_dc_penalty", fleet.mean_dc_penalty);
  json.member("max_dc_penalty", fleet.max_dc_penalty);
  json.member("min_dc_penalty", fleet.min_dc_penalty);
  json.member("worst_dc", fleet.worst_dc);
  json.member("mean_tor_fraction", fleet.mean_tor_fraction);
  json.member("worst_tor_fraction", fleet.worst_tor_fraction);
  json.member("faults_injected", fleet.faults_injected);
  json.member("tickets_opened", fleet.tickets_opened);
  json.member("repair_attempts", fleet.repair_attempts);
  json.member("first_attempt_accuracy", fleet.first_attempt_accuracy());
  json.member("redetections", fleet.redetections);
  json.member("mean_ticket_resolution_s", fleet.mean_ticket_resolution_s);
  json.member("undisabled_detections", fleet.undisabled_detections);
  json.key("controller").begin_object();
  json.member("corruption_reports", fleet.controller.corruption_reports);
  json.member("disabled_on_arrival", fleet.controller.disabled_on_arrival);
  json.member("disabled_on_activation",
              fleet.controller.disabled_on_activation);
  json.member("tickets_issued", fleet.controller.tickets_issued);
  json.member("optimizer_runs", fleet.controller.optimizer_runs);
  json.end_object();
  json.end_object();
}

}  // namespace

void write_fleet_json(std::ostream& out, const FleetResult& result,
                      const std::string& generator) {
  common::JsonWriter json(out);
  // The corropt-bench-metrics/1 envelope, minus "threads": the fleet
  // document is defined to be thread-count-invariant, so the one field
  // that records pool size is deliberately absent (the stdout summary
  // reports it instead).
  json.begin_object();
  json.member("schema", "corropt-bench-metrics/1");
  json.member("exhibit", "fleet");
  json.member("generator", generator);
  json.key("scenarios").begin_array();
  for (const DcResult& dc : result.dcs) write_dc_row(json, dc);
  json.end_array();
  write_fleet_aggregates(json, result.fleet);
  json.end_object();
}

std::string fleet_json_string(const FleetResult& result,
                              const std::string& generator) {
  std::ostringstream out;
  write_fleet_json(out, result, generator);
  return out.str();
}

void write_fleet_json_file(const std::string& path, const FleetResult& result,
                           const std::string& generator) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot open " + path + " for writing");
  }
  write_fleet_json(out, result, generator);
  if (!out) {
    throw std::runtime_error("write to " + path + " failed");
  }
}

}  // namespace corropt::fleet
