// Deterministic BENCH_fleet.json serialization.
//
// Writes a corropt-bench-metrics/1 document with one scenarios[] row per
// DC (canonical key order) plus a top-level "fleet" aggregate object —
// schema documented in EXPERIMENTS.md. Unlike bench::write_metrics_json,
// the envelope carries no "threads" member and the rows no "wall_seconds":
// those are the two sanctioned non-deterministic fields, and omitting them
// makes the whole file byte-identical for any thread count and submission
// order. Both bench_fleet and tests/fleet_test.cc serialize through this
// code, so the test's digest equality is a statement about the shipped
// bytes.
#pragma once

#include <iosfwd>
#include <string>

#include "fleet/fleet_campaign.h"

namespace corropt::fleet {

// Serializes the result to `out`; byte-deterministic given equal results.
void write_fleet_json(std::ostream& out, const FleetResult& result,
                      const std::string& generator);

// Serializes to a string (tests digest this).
[[nodiscard]] std::string fleet_json_string(const FleetResult& result,
                                            const std::string& generator);

// Writes to `path`; throws std::runtime_error when the file cannot be
// written.
void write_fleet_json_file(const std::string& path, const FleetResult& result,
                           const std::string& generator);

}  // namespace corropt::fleet
