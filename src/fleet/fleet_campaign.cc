#include "fleet/fleet_campaign.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "obs/sink.h"
#include "sim/mitigation_sim.h"

namespace corropt::fleet {

FleetCampaign::FleetCampaign(FleetSpec spec) : spec_(std::move(spec)) {}

DcResult run_dc(const FleetSpec& fleet, const DcSpec& dc, bool collect_obs) {
  const auto start = std::chrono::steady_clock::now();

  // Per-DC recipe, mirroring bench::run_job: fresh topology, sequential
  // trace RNG from the derived trace seed, simulation seeded with the
  // derived sim seed. A 1-DC fleet therefore reproduces a standalone
  // MitigationSimulation run bit-for-bit (tests/fleet_test.cc holds the
  // repo to that).
  topology::Topology topo = build_dc_topology(dc);
  common::Rng trace_rng(derive_dc_seed(fleet.seed, dc.key, SeedStream::kTrace));
  const std::vector<trace::TraceEvent> events =
      trace::CorruptionTraceGenerator(topo, dc.trace, trace_rng).generate();

  // DC-local observability: nothing is shared across workers, so the
  // folded snapshot/journal are bit-identical for any pool size.
  obs::MetricsRegistry registry;
  obs::EventJournal journal;
  obs::Sink sink{&registry, &journal, nullptr, 0};
  sim::ScenarioConfig config = dc.config;
  config.seed = derive_dc_seed(fleet.seed, dc.key, SeedStream::kSim);
  const bool collect = collect_obs && config.sink == nullptr;
  if (collect) config.sink = &sink;

  sim::MitigationSimulation sim(topo, config);

  DcResult result;
  result.name = dc.name;
  result.key = dc.key;
  result.shape = dc.shape;
  result.backend = dc.config.backend.kind;
  result.link_count = topo.link_count();
  result.switch_count = topo.switch_count();
  result.trace_events = events.size();
  result.capacity_fraction = dc.config.capacity_fraction;
  result.faults_per_link_per_day = dc.trace.faults_per_link_per_day;
  result.metrics = sim.run(events);
  for (const sim::TimePoint& p : result.metrics.worst_tor_fraction) {
    result.min_worst_tor_fraction =
        std::min(result.min_worst_tor_fraction, p.value);
  }
  if (collect) {
    result.has_obs = true;
    result.obs_metrics = registry.snapshot();
    result.journal = journal.snapshot();
    result.journal_dropped = journal.dropped();
  }
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

FleetMetrics merge_results(const std::vector<DcResult>& dcs) {
  FleetMetrics fleet;
  fleet.dc_count = dcs.size();
  if (dcs.empty()) return fleet;

  fleet.min_dc_penalty = dcs.front().metrics.integrated_penalty;
  double tor_fraction_weighted = 0.0;
  double resolution_weighted = 0.0;
  for (const DcResult& dc : dcs) {
    fleet.total_links += dc.link_count;
    fleet.total_switches += dc.switch_count;
    fleet.total_trace_events += dc.trace_events;

    const double penalty = dc.metrics.integrated_penalty;
    fleet.integrated_penalty += penalty;
    if (penalty > fleet.max_dc_penalty || fleet.worst_dc.empty()) {
      fleet.max_dc_penalty = penalty;
      fleet.worst_dc = dc.name;
    }
    fleet.min_dc_penalty = std::min(fleet.min_dc_penalty, penalty);

    tor_fraction_weighted +=
        dc.metrics.mean_tor_fraction * static_cast<double>(dc.link_count);
    fleet.worst_tor_fraction =
        std::min(fleet.worst_tor_fraction, dc.min_worst_tor_fraction);

    fleet.faults_injected += dc.metrics.faults_injected;
    fleet.tickets_opened += dc.metrics.tickets_opened;
    fleet.repair_attempts += dc.metrics.repair_attempts;
    fleet.first_attempts += dc.metrics.first_attempts;
    fleet.first_attempt_successes += dc.metrics.first_attempt_successes;
    fleet.redetections += dc.metrics.redetections;
    fleet.undisabled_detections += dc.metrics.undisabled_detections;
    resolution_weighted += dc.metrics.mean_ticket_resolution_s *
                           static_cast<double>(dc.metrics.tickets_opened);

    fleet.controller.corruption_reports +=
        dc.metrics.controller.corruption_reports;
    fleet.controller.disabled_on_arrival +=
        dc.metrics.controller.disabled_on_arrival;
    fleet.controller.disabled_on_activation +=
        dc.metrics.controller.disabled_on_activation;
    fleet.controller.tickets_issued += dc.metrics.controller.tickets_issued;
    fleet.controller.optimizer_runs += dc.metrics.controller.optimizer_runs;
  }
  fleet.mean_dc_penalty =
      fleet.integrated_penalty / static_cast<double>(dcs.size());
  if (fleet.total_links > 0) {
    fleet.mean_tor_fraction =
        tor_fraction_weighted / static_cast<double>(fleet.total_links);
  }
  if (fleet.tickets_opened > 0) {
    fleet.mean_ticket_resolution_s =
        resolution_weighted / static_cast<double>(fleet.tickets_opened);
  }
  return fleet;
}

FleetResult FleetCampaign::run(const CampaignOptions& options) const {
  std::vector<DcResult> results(spec_.dcs.size());
  common::ThreadPool pool(options.threads);
  common::parallel_for_each(pool, spec_.dcs.size(), [&](std::size_t i) {
    results[i] = run_dc(spec_, spec_.dcs[i], options.collect_obs);
  });

  // Canonical order: ascending key (name as tie-break), so the merged
  // floating-point sums and the serialized per-DC rows are independent of
  // the order DCs were listed in the spec.
  std::stable_sort(results.begin(), results.end(),
                   [](const DcResult& a, const DcResult& b) {
                     return a.key != b.key ? a.key < b.key : a.name < b.name;
                   });

  FleetResult out;
  out.fleet = merge_results(results);
  out.dcs = std::move(results);
  return out;
}

}  // namespace corropt::fleet
