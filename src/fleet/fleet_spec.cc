#include "fleet/fleet_spec.h"

#include <array>
#include <cassert>
#include <cstdio>

#include "common/rng.h"
#include "topology/fat_tree.h"

namespace corropt::fleet {

const char* shape_name(DcShape shape) {
  switch (shape) {
    case DcShape::kLargeDcn:
      return "large";
    case DcShape::kMediumDcn:
      return "medium";
    case DcShape::kXgft:
      return "xgft";
  }
  return "?";
}

std::uint64_t derive_dc_seed(std::uint64_t fleet_seed, std::uint64_t dc_key,
                             SeedStream stream) {
  // First draw of the counter-keyed generator: a pure function of
  // (fleet_seed, dc_key, stream) through three splitmix64 finalizer
  // rounds, so every DC stream is independent of submission order.
  return common::CounterRng(fleet_seed, dc_key,
                            static_cast<std::uint64_t>(stream))();
}

topology::Topology build_dc_topology(const DcSpec& dc) {
  switch (dc.shape) {
    case DcShape::kLargeDcn:
      return topology::build_large_dcn();
    case DcShape::kMediumDcn:
      return topology::build_medium_dcn();
    case DcShape::kXgft: {
      topology::Topology topo = topology::build_xgft(dc.xgft);
      if (dc.tor_breakout >= 2) {
        topo.assign_breakout_groups(dc.tor_breakout, /*lower_level=*/0);
      }
      if (dc.agg_breakout >= 2) {
        topo.assign_breakout_groups(dc.agg_breakout, /*lower_level=*/1);
      }
      return topo;
    }
  }
  assert(false && "unknown DcShape");
  return {};
}

namespace {

// XGFT equivalents of build_large_dcn / build_medium_dcn (the builders
// delegate to build_clos with these widths — see fat_tree.cc).
topology::XgftSpec large_dcn_spec() {
  topology::XgftSpec spec;
  spec.children_per_node = {56, 36};
  spec.parents_per_node = {12, 20};
  return spec;  // 32,832 links
}

topology::XgftSpec medium_dcn_spec() {
  topology::XgftSpec spec;
  spec.children_per_node = {40, 24};
  spec.parents_per_node = {12, 16};
  return spec;  // 16,128 links
}

}  // namespace

std::size_t expected_link_count(const DcSpec& dc) {
  switch (dc.shape) {
    case DcShape::kLargeDcn:
      return large_dcn_spec().total_links();
    case DcShape::kMediumDcn:
      return medium_dcn_spec().total_links();
    case DcShape::kXgft:
      return dc.xgft.total_links();
  }
  return 0;
}

namespace {

// Sub-streams of a DC's kShape seed, one per heterogeneity dimension, so
// adding a draw to one dimension never perturbs another.
enum ShapeField : std::uint64_t {
  kFieldShape = 1,
  kFieldDensity = 2,
  kFieldMix = 3,
  kFieldBurst = 4,
  kFieldConstraint = 5,
  kFieldRepair = 6,
};

// Custom XGFT designs in the palette beyond the paper's two evaluation
// DCNs: a wide leaf-spine fabric, two smaller k-ary fat-trees (edge
// sites), and a four-tier tree exercising r > 2 tiers above the ToR.
topology::XgftSpec leaf_spine_spec() {
  topology::XgftSpec spec;
  spec.children_per_node = {256};
  spec.parents_per_node = {32};
  return spec;  // 256 ToRs x 32 spines = 8,192 links
}

topology::XgftSpec deep_tree_spec() {
  topology::XgftSpec spec;
  spec.children_per_node = {16, 8, 8};
  spec.parents_per_node = {8, 4, 4};
  return spec;  // 4-tier XGFT, 1,024 ToRs, ~45K links
}

}  // namespace

FleetSpec make_deployment_fleet(std::size_t dc_count,
                                common::SimDuration duration,
                                std::uint64_t seed) {
  FleetSpec fleet;
  fleet.name = "deployment";
  fleet.seed = seed;
  fleet.dcs.reserve(dc_count);

  for (std::size_t i = 0; i < dc_count; ++i) {
    DcSpec dc;
    dc.key = i + 1;  // stable identity; 0 is reserved for hand-built DCs
    const std::uint64_t shape_seed =
        derive_dc_seed(seed, dc.key, SeedStream::kShape);

    // Shape: weighted palette. The paper's fleet mixes a few very large
    // fabrics with many mid-size ones.
    {
      common::CounterRng rng(shape_seed, kFieldShape, 0);
      const double u = rng.uniform();
      if (u < 0.20) {
        dc.shape = DcShape::kLargeDcn;
      } else if (u < 0.55) {
        dc.shape = DcShape::kMediumDcn;
      } else {
        dc.shape = DcShape::kXgft;
        const double v = rng.uniform();
        if (v < 0.30) {
          dc.xgft = leaf_spine_spec();
          dc.tor_breakout = 4;
          dc.agg_breakout = 0;
        } else if (v < 0.55) {
          dc.xgft = topology::fat_tree_spec(16);  // 2,048 links
          dc.tor_breakout = 2;
          dc.agg_breakout = 2;
        } else if (v < 0.80) {
          dc.xgft = topology::fat_tree_spec(24);  // 6,912 links
          dc.tor_breakout = 2;
          dc.agg_breakout = 4;
        } else {
          dc.xgft = deep_tree_spec();
          dc.tor_breakout = 2;
          dc.agg_breakout = 2;
        }
      }
    }

    char name[64];
    std::snprintf(name, sizeof(name), "dc%02zu-%s", i, shape_name(dc.shape));
    dc.name = name;

    // Fault density: the repo-wide default is 1.5e-4 faults/link/day
    // (DESIGN.md); DCs spread around it the way fleet age and optics mix
    // spread corruption incidence in practice.
    {
      common::CounterRng rng(shape_seed, kFieldDensity, 0);
      dc.trace.faults_per_link_per_day = rng.uniform(0.8e-4, 2.4e-4);
    }

    // Root-cause mix: per-DC contributions drawn within the Table 2
    // ranges (contamination 17-57%, damaged fiber 14-48%, decaying
    // transmitter <1%, bad transceiver 6-45%, shared component 10-26%)
    // and renormalized — the 007-style observation that no two DCs share
    // one fault profile.
    {
      common::CounterRng rng(shape_seed, kFieldMix, 0);
      faults::FaultMixParams& mix = dc.trace.mix;
      mix.p_contamination = rng.uniform(0.17, 0.57);
      mix.p_damaged_fiber = rng.uniform(0.14, 0.48);
      mix.p_decaying_transmitter = rng.uniform(0.001, 0.01);
      mix.p_bad_transceiver = rng.uniform(0.06, 0.45);
      mix.p_shared_component = rng.uniform(0.10, 0.26);
      const double total = mix.p_contamination + mix.p_damaged_fiber +
                           mix.p_decaying_transmitter + mix.p_bad_transceiver +
                           mix.p_shared_component;
      mix.p_contamination /= total;
      mix.p_damaged_fiber /= total;
      mix.p_decaying_transmitter /= total;
      mix.p_bad_transceiver /= total;
      mix.p_shared_component /= total;
    }

    // Burstiness (Section 3's correlated onsets) varies with how much
    // maintenance churn a site sees.
    {
      common::CounterRng rng(shape_seed, kFieldBurst, 0);
      dc.trace.p_burst = rng.uniform(0.02, 0.10);
    }

    // Capacity constraint: most DCs run the paper's default 75% ToR
    // spine-path requirement; some run looser or tighter SLAs.
    {
      common::CounterRng rng(shape_seed, kFieldConstraint, 0);
      const double u = rng.uniform();
      dc.config.capacity_fraction = u < 0.25 ? 0.5 : u < 0.80 ? 0.75 : 0.875;
    }

    // Repair crews differ: first-attempt success spread around the
    // paper's 0.8 simulation default.
    {
      common::CounterRng rng(shape_seed, kFieldRepair, 0);
      dc.config.outcome.first_attempt_success = rng.uniform(0.70, 0.90);
    }

    dc.trace.duration = duration;
    dc.config.duration = duration;
    dc.config.mode = core::CheckerMode::kCorrOpt;

    fleet.dcs.push_back(std::move(dc));
  }
  return fleet;
}

}  // namespace corropt::fleet
