#include "detect/sketch.h"

#include <algorithm>

#include "telemetry/monitor.h"

namespace corropt::detect {

namespace {

// splitmix64 finalizer; the project's standard key mixer.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Reserved CounterRng streams for the congestion-noise model; direction
// ids are 32-bit so these can never collide with per-direction streams.
constexpr std::uint64_t kNoiseCountStream = 1ULL << 33;
constexpr std::uint64_t kNoiseStreamBase = 1ULL << 34;

}  // namespace

SketchBackend::SketchBackend(const SketchParams& params, const BackendEnv& env)
    : topo_(env.topo),
      state_(env.state),
      params_(params),
      seed_(env.seed),
      offered_per_cycle_(telemetry::kDefaultPacketsPerPoll *
                         env.poll_utilization) {
  sketches_.resize(topo_->switch_count());
  inserted_.assign(topo_->direction_count(), 0);
  dirty_.assign(topo_->switch_count(), 0);
  above_.assign(topo_->link_count(), 0);
  believed_.assign(topo_->link_count(), 0);
  link_mark_.assign(topo_->link_count(), 0);
}

std::size_t SketchBackend::cell(common::DirectionId dir,
                                std::uint32_t row) const {
  const std::uint64_t h = mix64(
      seed_ ^ (static_cast<std::uint64_t>(dir.value()) |
               (static_cast<std::uint64_t>(row + 1) << 32)));
  return static_cast<std::size_t>(h % params_.width);
}

void SketchBackend::insert(common::DirectionId dir, std::uint64_t drops) {
  const common::SwitchId sw = topo_->transmitter(dir);
  std::vector<std::uint64_t>& sketch = sketches_[sw.index()];
  if (sketch.empty()) {
    sketch.assign(static_cast<std::size_t>(params_.width) * params_.depth, 0);
  }
  for (std::uint32_t row = 0; row < params_.depth; ++row) {
    sketch[static_cast<std::size_t>(row) * params_.width + cell(dir, row)] +=
        drops;
  }
  inserted_[dir.index()] += drops;
  if (dirty_[sw.index()] == 0) {
    dirty_[sw.index()] = 1;
    dirty_list_.push_back(sw);
  }
  obs_inserts_.add();
}

std::uint64_t SketchBackend::query(common::DirectionId dir) const {
  const std::vector<std::uint64_t>& sketch =
      sketches_[topo_->transmitter(dir).index()];
  if (sketch.empty()) return 0;
  std::uint64_t est = ~std::uint64_t{0};
  for (std::uint32_t row = 0; row < params_.depth; ++row) {
    est = std::min(est, sketch[static_cast<std::size_t>(row) * params_.width +
                               cell(dir, row)]);
  }
  return est;
}

void SketchBackend::poll(common::SimTime now,
                         std::span<const common::LinkId> /*suspects*/,
                         const VerdictCallback& cb) {
  ++cycle_;

  // Corruption drops: every lossy enabled direction records a Poisson
  // count of its offered load times its rate.
  const std::span<const double> rates = state_->corruption_rates();
  for (std::size_t d = 0; d < rates.size(); ++d) {
    if (rates[d] <= 0.0) continue;
    const auto dir = common::DirectionId(static_cast<std::uint32_t>(d));
    if (!topo_->is_enabled(topology::link_of(dir))) continue;
    const std::uint64_t drops =
        common::CounterRng(seed_, d, static_cast<std::uint64_t>(now))
            .poisson(offered_per_cycle_ * rates[d]);
    if (drops > 0) insert(dir, drops);
  }

  // Congestion noise: a few random directions per cycle record bursts
  // the sketch cannot attribute.
  const std::uint64_t noisy =
      common::CounterRng(seed_, kNoiseCountStream,
                         static_cast<std::uint64_t>(now))
          .poisson(params_.noise_directions_per_cycle);
  for (std::uint64_t i = 0; i < noisy; ++i) {
    common::CounterRng rng(seed_, kNoiseStreamBase + i,
                           static_cast<std::uint64_t>(now));
    auto d = static_cast<std::size_t>(
        rng.uniform() * static_cast<double>(topo_->direction_count()));
    if (d >= topo_->direction_count()) d = topo_->direction_count() - 1;
    const auto dir = common::DirectionId(static_cast<std::uint32_t>(d));
    if (!topo_->is_enabled(topology::link_of(dir))) continue;
    const std::uint64_t drops = rng.poisson(params_.mean_noise_drops);
    if (drops > 0) insert(dir, drops);
  }

  if (cycle_ % static_cast<std::uint64_t>(params_.window_polls) == 0) {
    decode(now, cb);
  }
}

void SketchBackend::decode(common::SimTime now, const VerdictCallback& cb) {
  obs_decodes_.add();
  const double offered_window =
      offered_per_cycle_ * static_cast<double>(params_.window_polls);

  // Candidates: every link with an egress direction on a dirty switch
  // (collisions make any of them decodable above zero) plus every
  // believed link (to observe recovery), judged in link-id order.
  std::vector<common::LinkId> candidates;
  auto add = [this, &candidates](common::LinkId link) {
    if (link_mark_[link.index()] != 0) return;
    link_mark_[link.index()] = 1;
    candidates.push_back(link);
  };
  for (common::SwitchId sw : dirty_list_) {
    for (common::LinkId link : topo_->switch_at(sw).uplinks) add(link);
    for (common::LinkId link : topo_->switch_at(sw).downlinks) add(link);
  }
  for (std::size_t l = 0; l < believed_.size(); ++l) {
    if (believed_[l] != 0) add(common::LinkId(static_cast<std::uint32_t>(l)));
  }
  for (common::LinkId link : candidates) link_mark_[link.index()] = 0;
  std::sort(candidates.begin(), candidates.end());

  if (offered_window >= static_cast<double>(params_.min_packets)) {
    for (common::LinkId link : candidates) {
      if (!topo_->is_enabled(link)) {
        // Disabled links carry no traffic: no fresh evidence either way,
        // mirroring the threshold detector's min-packets guard.
        above_[link.index()] = 0;
        continue;
      }
      const std::uint64_t drops = std::max(
          query(topology::direction_id(link, topology::LinkDirection::kUp)),
          query(topology::direction_id(link, topology::LinkDirection::kDown)));
      const double rate = static_cast<double>(drops) / offered_window;
      if (rate >= params_.report_threshold) {
        if (++above_[link.index()] >= params_.persistence_windows &&
            believed_[link.index()] == 0) {
          believed_[link.index()] = 1;
          Verdict verdict;
          verdict.kind = Verdict::Kind::kCorrupting;
          verdict.link = link;
          verdict.loss_rate = rate;
          verdict.time = now;
          cb(verdict);
        }
      } else {
        above_[link.index()] = 0;
        if (believed_[link.index()] != 0 && rate < params_.clear_threshold) {
          believed_[link.index()] = 0;
          Verdict verdict;
          verdict.kind = Verdict::Kind::kCleared;
          verdict.link = link;
          verdict.loss_rate = rate;
          verdict.time = now;
          cb(verdict);
        }
      }
    }
  }

  // Sketches hold window deltas: forget everything for the next window.
  for (common::SwitchId sw : dirty_list_) {
    std::vector<std::uint64_t>& sketch = sketches_[sw.index()];
    std::fill(sketch.begin(), sketch.end(), 0);
    dirty_[sw.index()] = 0;
  }
  dirty_list_.clear();
  std::fill(inserted_.begin(), inserted_.end(), 0);
}

void SketchBackend::reset(common::LinkId link) {
  believed_[link.index()] = 0;
  above_[link.index()] = 0;
  // Subtract the link's exact contribution from the current window so a
  // repaired link is not re-reported from stale deltas. Colliding
  // directions keep their own counts.
  for (const topology::LinkDirection d :
       {topology::LinkDirection::kUp, topology::LinkDirection::kDown}) {
    const auto dir = topology::direction_id(link, d);
    const std::uint64_t amount = inserted_[dir.index()];
    if (amount == 0) continue;
    inserted_[dir.index()] = 0;
    std::vector<std::uint64_t>& sketch =
        sketches_[topo_->transmitter(dir).index()];
    if (sketch.empty()) continue;
    for (std::uint32_t row = 0; row < params_.depth; ++row) {
      std::uint64_t& c =
          sketch[static_cast<std::size_t>(row) * params_.width +
                 cell(dir, row)];
      c -= std::min(c, amount);
    }
  }
}

void SketchBackend::attach_sink(obs::Sink* sink) {
  if (sink == nullptr || sink->metrics == nullptr) {
    obs_inserts_ = obs::Counter();
    obs_decodes_ = obs::Counter();
    return;
  }
  obs_inserts_ = sink->metrics->counter("detect.sketch_inserts");
  obs_decodes_ = sink->metrics->counter("detect.sketch_decodes");
}

void SketchBackend::snapshot_to(common::snap::Writer& w) const {
  w.section(common::snap::tag('S', 'K', 'T', 'B'), 1);
  w.u64(cycle_);
  // Sparse per-switch sketches: only allocated (non-empty) ones.
  w.u64(sketches_.size());
  std::uint64_t allocated = 0;
  for (const std::vector<std::uint64_t>& s : sketches_) {
    if (!s.empty()) ++allocated;
  }
  w.u64(allocated);
  for (std::size_t sw = 0; sw < sketches_.size(); ++sw) {
    if (sketches_[sw].empty()) continue;
    w.u64(sw);
    for (std::uint64_t c : sketches_[sw]) w.u64(c);
  }
  w.u64(inserted_.size());
  for (std::uint64_t v : inserted_) w.u64(v);
  w.u64(dirty_list_.size());
  for (common::SwitchId sw : dirty_list_) w.u32(sw.value());
  w.u64(above_.size());
  for (int a : above_) w.i64(a);
  for (char b : believed_) w.u8(static_cast<std::uint8_t>(b));
}

void SketchBackend::restore_from(common::snap::Reader& r) {
  r.expect_section(common::snap::tag('S', 'K', 'T', 'B'));
  cycle_ = r.u64();
  if (r.u64() != sketches_.size()) {
    common::snap::fail("sketch backend switch count mismatch");
  }
  const std::size_t cells =
      static_cast<std::size_t>(params_.width) * params_.depth;
  for (std::vector<std::uint64_t>& s : sketches_) s.clear();
  const std::uint64_t allocated = r.u64();
  for (std::uint64_t i = 0; i < allocated; ++i) {
    const std::uint64_t sw = r.u64();
    if (sw >= sketches_.size()) {
      common::snap::fail("sketch backend switch id out of range");
    }
    std::vector<std::uint64_t>& s = sketches_[sw];
    s.resize(cells);
    for (std::uint64_t& c : s) c = r.u64();
  }
  if (r.u64() != inserted_.size()) {
    common::snap::fail("sketch backend direction count mismatch");
  }
  for (std::uint64_t& v : inserted_) v = r.u64();
  std::fill(dirty_.begin(), dirty_.end(), 0);
  dirty_list_.resize(r.u64());
  for (common::SwitchId& sw : dirty_list_) {
    sw = common::SwitchId(r.u32());
    dirty_[sw.index()] = 1;
  }
  if (r.u64() != above_.size()) {
    common::snap::fail("sketch backend link count mismatch");
  }
  for (int& a : above_) a = static_cast<int>(r.i64());
  for (char& b : believed_) b = static_cast<char>(r.u8());
}

}  // namespace corropt::detect
