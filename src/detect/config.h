// Configuration of the pluggable detection/localization backends.
//
// The paper detects corruption from exact per-switch SNMP counters
// crossing the 802.3 1e-8 threshold (src/telemetry). Real fabrics
// increasingly localize drops from end-host flow evidence (007, Arzani
// et al.: failed flows vote on the links of their paths) or from compact
// switch summaries (sketch decomposition: count-min counters instead of
// exact per-direction registers). This header holds the selection enum
// and per-backend parameters; it is deliberately free of heavy includes
// so sim::ScenarioConfig can embed a BackendConfig without pulling the
// backend implementations into every translation unit.
#pragma once

#include <cstdint>
#include <string_view>

namespace corropt::detect {

// Which detection/localization backend drives the polled pipeline.
enum class BackendKind : std::uint8_t {
  // The paper's pipeline: SNMP counter polls of the suspect set through
  // telemetry::PollingMonitor + telemetry::CorruptionDetector (windowed
  // 1e-8 threshold with hysteresis). The default; byte-identical to the
  // pre-seam DetectionPipeline.
  kThreshold,
  // 007-style voting localizer: per-flow Clos paths are synthesized from
  // the topology, flows that saw retransmits cast one vote on every link
  // they traversed, and a greedy decomposition surfaces the top-voted
  // suspects.
  kVoting,
  // Sketch-based flow-loss detector: each switch keeps a count-min style
  // per-direction drop sketch (width x depth counters instead of exact
  // per-direction registers); lossy links are decoded from the sketch
  // deltas of each window.
  kSketch,
};

[[nodiscard]] std::string_view backend_name(BackendKind kind);

// Parameters of the 007-style voting localizer.
struct VotingParams {
  // Flows synthesized per 15-minute poll cycle, spread over random
  // (src ToR, dst ToR) pairs with valley-free Clos paths.
  std::size_t flows_per_cycle = 2000;
  // Packets carried per flow; a flow "fails" (sees retransmits) when at
  // least one packet is dropped, evaluated in closed form so the cost is
  // independent of this count.
  double packets_per_flow = 1e6;
  // Poll cycles aggregated per voting round (8 cycles = 2 hours).
  int window_cycles = 8;
  // Minimum failed flows through a link before it can be named a
  // suspect; 007's guard against single-flow noise.
  std::uint64_t min_votes = 3;
  // Minimum (all) flows observed through a believed link in a window
  // with zero failures before the report is withdrawn.
  std::uint64_t min_flows_to_clear = 6;
  // Per-flow probability of failing for non-corruption reasons
  // (congestion bursts, host retransmit noise); the localizer's false
  // positive source.
  double noise_bad_probability = 5e-4;
  // Estimated per-packet loss rate a suspect must reach to be reported.
  double report_threshold = 1e-8;
};

// Parameters of the sketch-based flow-loss detector.
struct SketchParams {
  // Count-min geometry per switch: `width` counters per row, `depth`
  // independently hashed rows (estimate = min over rows). Collisions
  // inflate estimates, so small sketches trade memory for false
  // positives — the evaluation axis of bench_detection_compare.
  std::uint32_t width = 512;
  std::uint32_t depth = 2;
  // Poll cycles aggregated per decode (sketches hold window deltas and
  // are reset after decoding).
  int window_polls = 4;
  // Consecutive windows a direction must decode above threshold before
  // the link is reported; rides out one-window congestion noise the
  // sketch cannot attribute (it has no corruption/congestion split).
  int persistence_windows = 2;
  // Estimated rate thresholds (decoded drops / offered packets).
  double report_threshold = 1e-8;
  double clear_threshold = 5e-9;
  // Minimum offered packets per window before a decode is meaningful.
  std::uint64_t min_packets = 1000000;
  // Congestion-noise model: expected number of directions per poll cycle
  // that record non-corruption drops, and the mean drop count of one
  // such burst. These insertions are indistinguishable from corruption
  // inside the sketch.
  double noise_directions_per_cycle = 2.0;
  double mean_noise_drops = 40.0;
};

// Backend selection plus per-backend parameters, embedded in
// sim::ScenarioConfig (and therefore in fleet::DcSpec overrides).
struct BackendConfig {
  BackendKind kind = BackendKind::kThreshold;
  VotingParams voting;
  SketchParams sketch;
  // Opt-in detailed observability for the default backend: the polled
  // pipeline registers detect.* counters (verdicts / false positives /
  // missed faults / latency histogram) and journals one
  // kDetectionVerdict record per verdict. Non-default backends always
  // get the detailed obs; the flag exists so threshold runs can opt in
  // without perturbing the golden-equivalence registry snapshots of
  // default configurations.
  bool obs_detail = false;

  [[nodiscard]] bool detailed_obs() const {
    return obs_detail || kind != BackendKind::kThreshold;
  }
};

// Stream-shaping profile of a backend for service::make_churn_stream:
// how much detection latency the backend adds over the SNMP threshold
// pipeline, and what fraction of its reports are spurious. Values are
// calibrated against bench_detection_compare (EXPERIMENTS.md).
struct BackendProfile {
  // Mean extra delay from fault onset to report, on top of the
  // threshold pipeline's polling latency (exponential).
  double extra_latency_mean_s = 0.0;
  // Spurious reports per genuine report (each is later withdrawn).
  double false_positive_fraction = 0.0;
};

[[nodiscard]] BackendProfile backend_profile(BackendKind kind);

}  // namespace corropt::detect
