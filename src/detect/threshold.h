// The paper's detection pipeline as a DetectionBackend.
//
// Re-homes the closed-loop monitoring stack sim::DetectionPipeline used
// to own inline: telemetry::PollingMonitor advances the suspect set's
// SNMP counters by one 15-minute epoch and telemetry::CorruptionDetector
// turns the samples into windowed, hysteretic 1e-8 threshold verdicts.
// The poll loop iterates suspects x {kUp, kDown} in exactly the pre-seam
// order and draws from the shared sequential sim stream, so default
// configurations remain byte-identical to the pre-seam pipeline (the
// golden-equivalence contract).
#pragma once

#include "detect/backend.h"
#include "telemetry/detector.h"
#include "telemetry/monitor.h"

namespace corropt::detect {

class ThresholdBackend final : public DetectionBackend {
 public:
  ThresholdBackend(const telemetry::DetectorParams& params,
                   const BackendEnv& env);

  [[nodiscard]] BackendKind kind() const override {
    return BackendKind::kThreshold;
  }
  [[nodiscard]] std::string_view name() const override { return "threshold"; }

  void poll(common::SimTime now, std::span<const common::LinkId> suspects,
            const VerdictCallback& cb) override;
  void reset(common::LinkId link) override;
  void attach_sink(obs::Sink* sink) override;

  // The monitor is stateless (its counters live in NetworkState and its
  // draws come from the shared sim stream, both serialized elsewhere);
  // only the detector's windows/estimates/alerts need the checkpoint.
  void snapshot_to(common::snap::Writer& w) const override;
  void restore_from(common::snap::Reader& r) override;

 private:
  telemetry::PollingMonitor monitor_;
  telemetry::CorruptionDetector detector_;
  double utilization_;
};

}  // namespace corropt::detect
