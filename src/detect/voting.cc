#include "detect/voting.h"

#include <algorithm>
#include <cmath>

namespace corropt::detect {

namespace {

// Keyed choice of one index in [0, n); n > 0.
std::size_t keyed_index(common::CounterRng& rng, std::size_t n) {
  auto i = static_cast<std::size_t>(rng.uniform() * static_cast<double>(n));
  return i >= n ? n - 1 : i;
}

}  // namespace

VotingBackend::VotingBackend(const VotingParams& params, const BackendEnv& env)
    : topo_(env.topo), state_(env.state), params_(params), seed_(env.seed) {
  const std::size_t switches = topo_->switch_count();
  const std::vector<common::SwitchId>& tors = topo_->tors();

  tor_index_.assign(switches, -1);
  for (std::size_t t = 0; t < tors.size(); ++t) {
    tor_index_[tors[t].index()] = static_cast<int>(t);
  }

  // Bottom-up structural reachability: a ToR reaches itself; any other
  // switch reaches the union of what its downlink endpoints reach.
  reach_.resize(switches);
  for (const topology::Switch& sw : topo_->switches()) {
    reach_[sw.id.index()].assign(tors.size());
  }
  for (common::SwitchId tor : tors) {
    reach_[tor.index()].set(
        static_cast<std::size_t>(tor_index_[tor.index()]));
  }
  for (int level = 1; level < topo_->level_count(); ++level) {
    for (common::SwitchId id : topo_->switches_at_level(level)) {
      common::DynamicBitset& reach = reach_[id.index()];
      for (common::LinkId down : topo_->switch_at(id).downlinks) {
        reach |= reach_[topo_->link_at(down).lower.index()];
      }
    }
  }

  votes_.assign(topo_->link_count(), 0);
  flows_through_.assign(topo_->link_count(), 0);
  believed_.assign(topo_->link_count(), 0);
  invalidated_.assign(topo_->link_count(), 0);
}

bool VotingBackend::walk_path(common::CounterRng& rng, common::SwitchId src,
                              common::SwitchId dst, std::size_t dst_tor,
                              std::vector<common::LinkId>& links,
                              std::vector<common::DirectionId>& dirs) const {
  links.clear();
  dirs.clear();
  if (src == dst) return false;

  std::vector<common::LinkId> choices;
  common::SwitchId cur = src;

  // Up phase: climb until the current switch structurally reaches the
  // destination ToR (the lowest common ancestor level).
  while (!reach_[cur.index()].test(dst_tor)) {
    choices.clear();
    for (common::LinkId up : topo_->switch_at(cur).uplinks) {
      if (topo_->is_enabled(up)) choices.push_back(up);
    }
    if (choices.empty()) return false;
    const common::LinkId link = choices[keyed_index(rng, choices.size())];
    links.push_back(link);
    dirs.push_back(topology::direction_id(link, topology::LinkDirection::kUp));
    cur = topo_->link_at(link).upper;
  }

  // Down phase: descend along enabled links whose lower endpoint still
  // reaches the destination.
  while (cur != dst) {
    choices.clear();
    for (common::LinkId down : topo_->switch_at(cur).downlinks) {
      if (!topo_->is_enabled(down)) continue;
      if (reach_[topo_->link_at(down).lower.index()].test(dst_tor)) {
        choices.push_back(down);
      }
    }
    if (choices.empty()) return false;
    const common::LinkId link = choices[keyed_index(rng, choices.size())];
    links.push_back(link);
    dirs.push_back(
        topology::direction_id(link, topology::LinkDirection::kDown));
    cur = topo_->link_at(link).lower;
  }
  return true;
}

void VotingBackend::poll(common::SimTime now,
                         std::span<const common::LinkId> /*suspects*/,
                         const VerdictCallback& cb) {
  ++cycle_;
  const std::vector<common::SwitchId>& tors = topo_->tors();
  if (tors.size() >= 2) {
    std::vector<common::LinkId> links;
    std::vector<common::DirectionId> dirs;
    for (std::size_t flow = 0; flow < params_.flows_per_cycle; ++flow) {
      common::CounterRng rng(seed_, cycle_, flow);
      const std::size_t src_tor = keyed_index(rng, tors.size());
      const std::size_t dst_tor = keyed_index(rng, tors.size());
      if (src_tor == dst_tor) continue;
      if (!walk_path(rng, tors[src_tor], tors[dst_tor], dst_tor, links,
                     dirs)) {
        continue;
      }
      obs_flows_.add();

      // Per-packet survival along the path, then the probability that at
      // least one of packets_per_flow packets was dropped, folded with
      // the non-corruption noise floor.
      double log_survive = 0.0;
      for (common::DirectionId dir : dirs) {
        const double rate = state_->corruption_rate(dir);
        if (rate > 0.0) {
          log_survive += std::log1p(-std::min(rate, 1.0 - 1e-12));
        }
      }
      const double p_drop = -std::expm1(params_.packets_per_flow *
                                        log_survive);
      const double p_bad =
          p_drop + params_.noise_bad_probability * (1.0 - p_drop);
      const bool bad = rng.bernoulli(p_bad);

      for (common::LinkId link : links) ++flows_through_[link.index()];
      if (bad) {
        obs_bad_flows_.add();
        for (common::LinkId link : links) ++votes_[link.index()];
        bad_paths_.push_back(links);
      }
    }
  }

  if (cycle_ % static_cast<std::uint64_t>(params_.window_cycles) == 0) {
    decode(now, cb);
  }
}

void VotingBackend::decode(common::SimTime now, const VerdictCallback& cb) {
  // Greedy max-vote decomposition over this window's failed flows: the
  // top-voted link explains (and removes) its flows, repeat until no
  // link clears the vote floor. Reports fire inside the loop so a second
  // simultaneous bad link shadowed by the first is still surfaced.
  std::vector<std::uint64_t> vote_count = votes_;
  std::vector<char> alive(bad_paths_.size(), 1);
  for (;;) {
    std::size_t best = 0;
    std::uint64_t best_votes = 0;
    for (std::size_t l = 0; l < vote_count.size(); ++l) {
      if (invalidated_[l] != 0) continue;
      if (vote_count[l] >= params_.min_votes && vote_count[l] > best_votes) {
        best = l;
        best_votes = vote_count[l];
      }
    }
    if (best_votes == 0) break;

    const double frac =
        static_cast<double>(best_votes) /
        static_cast<double>(std::max<std::uint64_t>(flows_through_[best], 1));
    // Invert the per-flow failure probability back to a per-packet rate.
    const double est =
        frac >= 1.0 ? 1.0
                    : std::min(1.0, -std::log1p(-frac) /
                                        params_.packets_per_flow);
    if (est >= params_.report_threshold && believed_[best] == 0) {
      believed_[best] = 1;
      Verdict verdict;
      verdict.kind = Verdict::Kind::kCorrupting;
      verdict.link = common::LinkId(static_cast<std::uint32_t>(best));
      verdict.loss_rate = est;
      verdict.time = now;
      cb(verdict);
    }

    for (std::size_t p = 0; p < bad_paths_.size(); ++p) {
      if (alive[p] == 0) continue;
      bool through = false;
      for (common::LinkId link : bad_paths_[p]) {
        if (link.index() == best) {
          through = true;
          break;
        }
      }
      if (!through) continue;
      alive[p] = 0;
      for (common::LinkId link : bad_paths_[p]) --vote_count[link.index()];
    }
  }

  // Clears: a believed link that carried enough flows this window with
  // zero failures is no longer corrupting.
  for (std::size_t l = 0; l < believed_.size(); ++l) {
    if (believed_[l] == 0 || invalidated_[l] != 0) continue;
    if (flows_through_[l] >= params_.min_flows_to_clear && votes_[l] == 0) {
      believed_[l] = 0;
      Verdict verdict;
      verdict.kind = Verdict::Kind::kCleared;
      verdict.link = common::LinkId(static_cast<std::uint32_t>(l));
      verdict.loss_rate = 0.0;
      verdict.time = now;
      cb(verdict);
    }
  }

  std::fill(votes_.begin(), votes_.end(), 0);
  std::fill(flows_through_.begin(), flows_through_.end(), 0);
  std::fill(invalidated_.begin(), invalidated_.end(), 0);
  bad_paths_.clear();
}

void VotingBackend::reset(common::LinkId link) {
  believed_[link.index()] = 0;
  invalidated_[link.index()] = 1;
}

void VotingBackend::attach_sink(obs::Sink* sink) {
  if (sink == nullptr || sink->metrics == nullptr) {
    obs_flows_ = obs::Counter();
    obs_bad_flows_ = obs::Counter();
    return;
  }
  obs_flows_ = sink->metrics->counter("detect.flows");
  obs_bad_flows_ = sink->metrics->counter("detect.bad_flows");
}

void VotingBackend::snapshot_to(common::snap::Writer& w) const {
  w.section(common::snap::tag('V', 'O', 'T', 'B'), 1);
  w.u64(cycle_);
  w.u64(votes_.size());
  for (std::uint64_t v : votes_) w.u64(v);
  for (std::uint64_t f : flows_through_) w.u64(f);
  w.u64(bad_paths_.size());
  for (const std::vector<common::LinkId>& path : bad_paths_) {
    w.u64(path.size());
    for (common::LinkId link : path) w.u32(link.value());
  }
  for (char b : believed_) w.u8(static_cast<std::uint8_t>(b));
  for (char i : invalidated_) w.u8(static_cast<std::uint8_t>(i));
}

void VotingBackend::restore_from(common::snap::Reader& r) {
  r.expect_section(common::snap::tag('V', 'O', 'T', 'B'));
  cycle_ = r.u64();
  if (r.u64() != votes_.size()) {
    common::snap::fail("voting backend link count mismatch");
  }
  for (std::uint64_t& v : votes_) v = r.u64();
  for (std::uint64_t& f : flows_through_) f = r.u64();
  bad_paths_.assign(r.u64(), {});
  for (std::vector<common::LinkId>& path : bad_paths_) {
    path.resize(r.u64());
    for (common::LinkId& link : path) link = common::LinkId(r.u32());
  }
  for (char& b : believed_) b = static_cast<char>(r.u8());
  for (char& i : invalidated_) i = static_cast<char>(r.u8());
}

}  // namespace corropt::detect
