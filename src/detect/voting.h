// 007-style voting localizer (Arzani et al., NSDI 2018).
//
// Instead of polling switch counters, the backend synthesizes end-host
// flows: each poll cycle it draws (src ToR, dst ToR) pairs, walks a
// valley-free Clos path over enabled links (up to the lowest common
// ancestor, then down), and evaluates in closed form whether the flow
// would have seen a retransmit given the per-direction corruption rates
// it traversed. Every failed flow casts one vote on every link of its
// path; at the end of each window a greedy max-vote decomposition names
// the smallest set of links explaining the failed flows, and links whose
// implied per-packet rate crosses the report threshold are surfaced.
//
// Determinism: every draw comes from a CounterRng keyed on
// (seed, cycle, flow), so flows are independent of evaluation order and
// the backend never touches the shared sequential sim stream.
#pragma once

#include <vector>

#include "common/bitset.h"
#include "detect/backend.h"

namespace corropt::detect {

class VotingBackend final : public DetectionBackend {
 public:
  VotingBackend(const VotingParams& params, const BackendEnv& env);

  [[nodiscard]] BackendKind kind() const override {
    return BackendKind::kVoting;
  }
  [[nodiscard]] std::string_view name() const override { return "voting"; }

  void poll(common::SimTime now, std::span<const common::LinkId> suspects,
            const VerdictCallback& cb) override;
  void reset(common::LinkId link) override;
  void attach_sink(obs::Sink* sink) override;

  // Checkpoints the cycle counter (which keys every CounterRng draw),
  // the window accumulators and the belief flags; reach_/tor_index_ are
  // structural and rebuilt at construction.
  void snapshot_to(common::snap::Writer& w) const override;
  void restore_from(common::snap::Reader& r) override;

 private:
  // Synthesizes one flow's path; returns false when the pair is
  // unroutable (src == dst, or disabled links cut every choice).
  bool walk_path(common::CounterRng& rng, common::SwitchId src,
                 common::SwitchId dst, std::size_t dst_tor,
                 std::vector<common::LinkId>& links,
                 std::vector<common::DirectionId>& dirs) const;

  // End-of-window decode: greedy vote decomposition + clears.
  void decode(common::SimTime now, const VerdictCallback& cb);

  const topology::Topology* topo_;
  const telemetry::NetworkState* state_;
  VotingParams params_;
  std::uint64_t seed_ = 0;

  // Structural reachability, computed once: reach_[switch] has bit t set
  // when ToR index t is reachable by strictly-downward links (ignoring
  // administrative state; the walk itself respects enabled links).
  std::vector<common::DynamicBitset> reach_;
  // ToR index (position in topo.tors()) per switch; -1 for non-ToRs.
  std::vector<int> tor_index_;

  std::uint64_t cycle_ = 0;
  // Window accumulators, indexed by link.
  std::vector<std::uint64_t> votes_;
  std::vector<std::uint64_t> flows_through_;
  // Paths (link lists) of the window's failed flows, for decomposition.
  std::vector<std::vector<common::LinkId>> bad_paths_;
  // Links currently reported as corrupting.
  std::vector<char> believed_;
  // Links reset mid-window: their stale votes are excluded from this
  // window's decode.
  std::vector<char> invalidated_;

  obs::Counter obs_flows_;
  obs::Counter obs_bad_flows_;
};

}  // namespace corropt::detect
