#include "detect/backend.h"

#include "detect/sketch.h"
#include "detect/threshold.h"
#include "detect/voting.h"

namespace corropt::detect {

std::string_view backend_name(BackendKind kind) {
  switch (kind) {
    case BackendKind::kThreshold:
      return "threshold";
    case BackendKind::kVoting:
      return "voting";
    case BackendKind::kSketch:
      return "sketch";
  }
  return "unknown";
}

BackendProfile backend_profile(BackendKind kind) {
  switch (kind) {
    case BackendKind::kThreshold:
      // The reference: SNMP polling latency only.
      return {0.0, 0.0};
    case BackendKind::kVoting:
      // An 8-cycle (2 h) voting window vs. the threshold detector's
      // 4-poll (1 h) window adds about one hour of mean latency; noisy
      // flows occasionally elect a clean link.
      return {3600.0, 0.02};
    case BackendKind::kSketch:
      // Two consecutive 1 h windows before a report; hash collisions
      // make spurious reports the most common of the three families.
      return {2700.0, 0.05};
  }
  return {0.0, 0.0};
}

std::unique_ptr<DetectionBackend> make_backend(
    const BackendConfig& config, const telemetry::DetectorParams& detector,
    const BackendEnv& env) {
  switch (config.kind) {
    case BackendKind::kVoting:
      return std::make_unique<VotingBackend>(config.voting, env);
    case BackendKind::kSketch:
      return std::make_unique<SketchBackend>(config.sketch, env);
    case BackendKind::kThreshold:
      break;
  }
  return std::make_unique<ThresholdBackend>(detector, env);
}

}  // namespace corropt::detect
