// Sketch-based flow-loss detector.
//
// Models a switch dataplane that cannot afford exact per-direction drop
// registers: each switch keeps one count-min sketch (width x depth
// counters, estimate = min over rows) over its egress directions. Every
// poll cycle the drops each lossy direction would have recorded are
// inserted under that direction's hashes; congestion noise bursts land
// in the same sketch, indistinguishable from corruption. Every
// `window_polls` cycles the backend decodes the sketch deltas of dirty
// switches: a direction whose estimate implies a loss rate above the
// report threshold for `persistence_windows` consecutive windows is
// reported. False positives come from hash collisions — two directions
// sharing cells in every row — which is exactly the width x depth
// precision/recall trade bench_detection_compare sweeps.
//
// Determinism: all drop counts are drawn from CounterRng keyed on
// (seed, direction, poll time) and noise from reserved streams, so the
// backend never touches the shared sequential sim stream and results
// are independent of evaluation order.
#pragma once

#include <vector>

#include "detect/backend.h"

namespace corropt::detect {

class SketchBackend final : public DetectionBackend {
 public:
  SketchBackend(const SketchParams& params, const BackendEnv& env);

  [[nodiscard]] BackendKind kind() const override {
    return BackendKind::kSketch;
  }
  [[nodiscard]] std::string_view name() const override { return "sketch"; }

  void poll(common::SimTime now, std::span<const common::LinkId> suspects,
            const VerdictCallback& cb) override;
  void reset(common::LinkId link) override;
  void attach_sink(obs::Sink* sink) override;

  // Checkpoints the cycle counter, per-switch sketch contents, the
  // window's exact insertion totals and dirty set, and the per-link
  // persistence/belief state.
  void snapshot_to(common::snap::Writer& w) const override;
  void restore_from(common::snap::Reader& r) override;

 private:
  // Row-r cell index of a direction in its switch's sketch.
  [[nodiscard]] std::size_t cell(common::DirectionId dir,
                                 std::uint32_t row) const;
  // Adds `drops` under every row hash of `dir` in the transmitting
  // switch's (lazily allocated) sketch.
  void insert(common::DirectionId dir, std::uint64_t drops);
  // Count-min point query for one direction; 0 when the transmitting
  // switch never allocated a sketch.
  [[nodiscard]] std::uint64_t query(common::DirectionId dir) const;
  // End-of-window decode over dirty switches + believed links, then
  // clears all sketch deltas.
  void decode(common::SimTime now, const VerdictCallback& cb);

  const topology::Topology* topo_;
  const telemetry::NetworkState* state_;
  SketchParams params_;
  std::uint64_t seed_ = 0;
  // Offered packets per direction per poll cycle.
  double offered_per_cycle_ = 0.0;

  std::uint64_t cycle_ = 0;
  // Per-switch sketches; empty vector = never allocated. Allocated size
  // is width * depth, row-major.
  std::vector<std::vector<std::uint64_t>> sketches_;
  // Exact per-direction insertion totals this window, so reset(link) can
  // subtract a direction's contribution from every row without touching
  // colliding directions.
  std::vector<std::uint64_t> inserted_;
  // Switches whose sketch received insertions this window.
  std::vector<char> dirty_;
  std::vector<common::SwitchId> dirty_list_;
  // Per-link verdict state: consecutive above-threshold windows and the
  // current belief.
  std::vector<int> above_;
  std::vector<char> believed_;
  // Scratch for candidate gathering during decode.
  std::vector<char> link_mark_;

  obs::Counter obs_inserts_;
  obs::Counter obs_decodes_;
};

}  // namespace corropt::detect
