// The DetectionBackend seam: how the polled pipeline learns that links
// corrupt.
//
// sim::DetectionPipeline owns the poll cadence, the suspect set, the
// pending-detection latency books and the controller hand-off; a
// DetectionBackend owns *how evidence is gathered and turned into
// verdicts* within one poll cycle. Three families are implemented:
//
//   kThreshold  exact SNMP counters vs. the 802.3 1e-8 threshold
//               (the paper's pipeline, re-homed from DetectionPipeline)
//   kVoting     007-style: synthesized flows vote on traversed links
//   kSketch     count-min per-switch drop sketches decoded per window
//
// Determinism contract (DESIGN.md §13): kThreshold draws from the shared
// sequential sim stream (ctx.rng) in exactly the order the pre-seam
// pipeline did, which keeps default-config golden fixtures byte-equal.
// kVoting/kSketch draw exclusively from common::CounterRng keyed on
// (backend seed, entity, cycle), so their cost and draw count never
// perturb the shared stream and results are independent of evaluation
// order. Verdicts are delivered through the callback *during* the cycle
// (not batched): the controller may disable a link mid-cycle and later
// samples of the same cycle must observe that, exactly as the pre-seam
// loop behaved.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string_view>

#include "common/ids.h"
#include "common/rng.h"
#include "common/snapshot.h"
#include "common/time.h"
#include "detect/config.h"
#include "obs/sink.h"
#include "telemetry/detector.h"
#include "telemetry/network_state.h"
#include "topology/topology.h"

namespace corropt::detect {

// A backend verdict is exactly what the threshold detector emits: the
// link, the direction-worst estimated loss rate, and whether the link
// crossed into (kCorrupting) or out of (kCleared) the corrupting set.
using Verdict = telemetry::DetectionEvent;

using VerdictCallback = std::function<void(const Verdict&)>;

// Everything a backend may read or draw from, lent by the simulation.
// `state` and `rng` outlive the backend; `rng` is the shared sequential
// stream and only kThreshold may touch it.
struct BackendEnv {
  const topology::Topology* topo = nullptr;
  telemetry::NetworkState* state = nullptr;
  common::Rng* rng = nullptr;
  // Scenario seed; keyed backends derive their CounterRng streams from
  // it so runs stay reproducible end to end.
  std::uint64_t seed = 0;
  // Offered utilization during poll intervals (ScenarioConfig's
  // poll_utilization).
  double poll_utilization = 0.0;
};

class DetectionBackend {
 public:
  virtual ~DetectionBackend() = default;

  [[nodiscard]] virtual BackendKind kind() const = 0;
  [[nodiscard]] virtual std::string_view name() const = 0;

  // Runs one 15-minute poll cycle. `suspects` is the pipeline's belief
  // set (active-fault links + controller corruption entries + pending
  // detections) in deterministic order; counter-based backends gather
  // their own fabric-wide evidence and may ignore it. Verdicts are
  // invoked in a deterministic order as they are produced.
  virtual void poll(common::SimTime now,
                    std::span<const common::LinkId> suspects,
                    const VerdictCallback& cb) = 0;

  // Drops all alert/window state for the link (repair closed, or a
  // shared-component peer was silenced); fresh evidence must
  // re-establish any verdict.
  virtual void reset(common::LinkId link) = 0;

  // Wires backend-internal observability counters. The registry's
  // snapshot order is registration order, so the composition layer calls
  // this at the same point the pre-seam pipeline attached its monitor
  // and detector.
  virtual void attach_sink(obs::Sink* sink) = 0;

  // Checkpointing (DESIGN.md §14): the backend's accumulated evidence —
  // windows, votes, sketch deltas, beliefs, cycle counters. The payload
  // is framed as a blob by the caller (sim::DetectionPipeline) so a
  // branch running a *different* backend kind can skip it unread; a
  // same-kind restore must target a backend built from the same
  // topology (vector sizes are guards).
  virtual void snapshot_to(common::snap::Writer& w) const = 0;
  virtual void restore_from(common::snap::Reader& r) = 0;
};

// Builds the backend selected by `config.kind`. `detector` carries the
// threshold/hysteresis parameters shared by all families (the voting and
// sketch backends reuse its thresholds where their params do not
// override them).
[[nodiscard]] std::unique_ptr<DetectionBackend> make_backend(
    const BackendConfig& config, const telemetry::DetectorParams& detector,
    const BackendEnv& env);

}  // namespace corropt::detect
