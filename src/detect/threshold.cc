#include "detect/threshold.h"

namespace corropt::detect {

ThresholdBackend::ThresholdBackend(const telemetry::DetectorParams& params,
                                   const BackendEnv& env)
    : monitor_(*env.state, *env.rng),
      detector_(*env.topo, params),
      utilization_(env.poll_utilization) {}

void ThresholdBackend::poll(common::SimTime now,
                            std::span<const common::LinkId> suspects,
                            const VerdictCallback& cb) {
  telemetry::DirectionLoad load;
  load.utilization = utilization_;
  for (common::LinkId link : suspects) {
    for (const topology::LinkDirection dir :
         {topology::LinkDirection::kUp, topology::LinkDirection::kDown}) {
      const auto direction = topology::direction_id(link, dir);
      const telemetry::PollSample sample =
          monitor_.poll_direction(direction, now, load);
      const auto verdict = detector_.observe(sample);
      if (verdict.has_value()) cb(*verdict);
    }
  }
}

void ThresholdBackend::reset(common::LinkId link) { detector_.reset(link); }

void ThresholdBackend::attach_sink(obs::Sink* sink) {
  monitor_.set_sink(sink);
  detector_.set_sink(sink);
}

void ThresholdBackend::snapshot_to(common::snap::Writer& w) const {
  w.section(common::snap::tag('T', 'H', 'R', 'B'), 1);
  detector_.snapshot_to(w);
}

void ThresholdBackend::restore_from(common::snap::Reader& r) {
  r.expect_section(common::snap::tag('T', 'H', 'R', 'B'));
  detector_.restore_from(r);
}

}  // namespace corropt::detect
