#include "topology/xgft.h"

#include <cassert>
#include <string>

namespace corropt::topology {

namespace {

// Number of "group" positions at a level: product of child arities above.
std::size_t group_count(const XgftSpec& spec, int level) {
  std::size_t g = 1;
  for (int j = level; j < spec.height(); ++j) {
    g *= static_cast<std::size_t>(spec.children_per_node[
        static_cast<std::size_t>(j)]);
  }
  return g;
}

// Number of "replica" positions at a level: product of parent arities
// below.
std::size_t replica_count(const XgftSpec& spec, int level) {
  std::size_t r = 1;
  for (int j = 0; j < level; ++j) {
    r *= static_cast<std::size_t>(spec.parents_per_node[
        static_cast<std::size_t>(j)]);
  }
  return r;
}

}  // namespace

std::size_t XgftSpec::nodes_at_level(int level) const {
  assert(level >= 0 && level <= height());
  return group_count(*this, level) * replica_count(*this, level);
}

std::size_t XgftSpec::total_links() const {
  std::size_t links = 0;
  for (int level = 0; level < height(); ++level) {
    links += nodes_at_level(level) *
             static_cast<std::size_t>(
                 parents_per_node[static_cast<std::size_t>(level)]);
  }
  return links;
}

Topology build_xgft(const XgftSpec& spec) {
  assert(spec.height() >= 1);
  assert(spec.children_per_node.size() == spec.parents_per_node.size());
  for (int i = 0; i < spec.height(); ++i) {
    assert(spec.children_per_node[static_cast<std::size_t>(i)] > 0);
    assert(spec.parents_per_node[static_cast<std::size_t>(i)] > 0);
  }

  Topology topo;
  // Pods are the level-1 groups: G_1 = product of child arities above
  // level 1. A level-l switch's pod is its group index scaled down to
  // that granularity; switches whose subtree spans multiple pods
  // (spines, super-aggregation layers) get pod -1.
  std::size_t pods = 1;
  for (int j = 1; j < spec.height(); ++j) {
    pods *= static_cast<std::size_t>(
        spec.children_per_node[static_cast<std::size_t>(j)]);
  }

  // ids[level][group * replicas + replica] -> SwitchId
  std::vector<std::vector<SwitchId>> ids(
      static_cast<std::size_t>(spec.height()) + 1);
  for (int level = 0; level <= spec.height(); ++level) {
    const std::size_t count = spec.nodes_at_level(level);
    const std::size_t groups = group_count(spec, level);
    const std::size_t replicas = replica_count(spec, level);
    ids[static_cast<std::size_t>(level)].reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t group = i / replicas;
      const int pod = groups >= pods
                          ? static_cast<int>(group / (groups / pods))
                          : -1;
      topo.add_switch(level,
                      "L" + std::to_string(level) + "-" + std::to_string(i),
                      pod);
      ids[static_cast<std::size_t>(level)].push_back(
          SwitchId(static_cast<SwitchId::underlying_type>(
              topo.switch_count() - 1)));
    }
  }

  // A level-`l` node (g, r) connects to parents (g / m, r + t * R_l) for
  // t in [0, w); R_l = replica_count(l). Children of a parent (g', r')
  // are (g' * m + s, r' mod R_l).
  for (int level = 0; level < spec.height(); ++level) {
    const auto m = static_cast<std::size_t>(
        spec.children_per_node[static_cast<std::size_t>(level)]);
    const auto w = static_cast<std::size_t>(
        spec.parents_per_node[static_cast<std::size_t>(level)]);
    const std::size_t groups = group_count(spec, level);
    const std::size_t replicas = replica_count(spec, level);
    for (std::size_t g = 0; g < groups; ++g) {
      for (std::size_t r = 0; r < replicas; ++r) {
        const SwitchId lower =
            ids[static_cast<std::size_t>(level)][g * replicas + r];
        for (std::size_t t = 0; t < w; ++t) {
          const std::size_t parent_group = g / m;
          const std::size_t parent_replica = r + t * replicas;
          const std::size_t parent_replicas = replicas * w;
          const SwitchId upper =
              ids[static_cast<std::size_t>(level) + 1]
                 [parent_group * parent_replicas + parent_replica];
          topo.add_link(lower, upper);
        }
      }
    }
  }

  topo.validate();
  return topo;
}

}  // namespace corropt::topology
