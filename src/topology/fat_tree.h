// k-ary fat-tree and parameterized three-stage Clos builders.
//
// These are the concrete topologies the paper's evaluation runs on: a
// "large" DCN with O(35K) switch-to-switch links and a "medium" one with
// O(15K) links (Section 7.1). A k-ary fat-tree has k pods, k/2 ToRs and
// k/2 aggregation switches per pod, and (k/2)^2 spines; k = 40 yields
// 32,000 links (large) and k = 32 yields 16,384 (medium).
#pragma once

#include "topology/topology.h"
#include "topology/xgft.h"

namespace corropt::topology {

// Standard k-ary fat-tree restricted to switch-to-switch links (servers
// are not modeled; corruption mitigation only applies to inter-switch
// optical links, Section 2). Requires even k >= 2.
[[nodiscard]] Topology build_fat_tree(int k);

// The XGFT spec equivalent of build_fat_tree, for callers that want to
// inspect expected sizes before building.
[[nodiscard]] XgftSpec fat_tree_spec(int k);

struct ClosSpec {
  int pods = 4;
  int tors_per_pod = 2;
  int aggs_per_pod = 2;
  // Each aggregation switch connects to this many spines; aggregation
  // switches with the same index across pods share a spine group, so the
  // spine count is aggs_per_pod * spine_group_size.
  int spine_group_size = 2;
};

// Three-stage folded Clos with independent pod width and spine fan-out.
[[nodiscard]] Topology build_clos(const ClosSpec& spec);

// The paper's evaluation topologies (Section 7.1).
[[nodiscard]] Topology build_large_dcn();   // ~32K links (k = 40)
[[nodiscard]] Topology build_medium_dcn();  // ~16K links (k = 32)

}  // namespace corropt::topology
