// Extended Generalized Fat Tree (XGFT) builder.
//
// XGFT(h; m_1..m_h; w_1..w_h) is the standard parameterized family of
// multi-stage, folded-Clos networks (Öhring et al.). Level 0 holds the
// leaves (ToRs here); each level-i node has m_i children at level i-1 and
// each level-(i-1) node has w_i parents at level i. The k-ary fat-tree and
// the paper's ToR-Agg-Spine Clos designs are instances, and XGFT gives us
// deeper trees (r tiers above the ToR) for exercising the generalization
// of the switch-local threshold sc = c^(1/r) discussed in Section 5.1.
#pragma once

#include <vector>

#include "topology/topology.h"

namespace corropt::topology {

struct XgftSpec {
  // children_per_node[i] is m_{i+1}: children each level-(i+1) node has.
  std::vector<int> children_per_node;
  // parents_per_node[i] is w_{i+1}: parents each level-i node has.
  std::vector<int> parents_per_node;

  [[nodiscard]] int height() const {
    return static_cast<int>(children_per_node.size());
  }
  // Node count at `level` in [0, height()].
  [[nodiscard]] std::size_t nodes_at_level(int level) const;
  [[nodiscard]] std::size_t total_links() const;
};

// Builds the XGFT; aborts if the spec is malformed (empty or non-positive
// arities, mismatched vector lengths).
[[nodiscard]] Topology build_xgft(const XgftSpec& spec);

}  // namespace corropt::topology
