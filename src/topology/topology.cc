#include "topology/topology.h"

#include <cassert>
#include <cstdlib>

#include "common/logging.h"

namespace corropt::topology {

SwitchId Topology::add_switch(int level, std::string name, int pod) {
  assert(level >= 0);
  const SwitchId id(static_cast<SwitchId::underlying_type>(switches_.size()));
  Switch sw;
  sw.id = id;
  sw.level = level;
  sw.pod = pod;
  sw.name = std::move(name);
  switches_.push_back(std::move(sw));
  if (level + 1 > level_count_) {
    level_count_ = level + 1;
    by_level_.resize(static_cast<std::size_t>(level_count_));
  }
  by_level_[static_cast<std::size_t>(level)].push_back(id);
  return id;
}

LinkId Topology::add_link(SwitchId lower, SwitchId upper) {
  assert(lower.valid() && upper.valid());
  const Switch& lo = switch_at(lower);
  const Switch& up = switch_at(upper);
  assert(lo.level + 1 == up.level && "links connect adjacent levels");
  (void)lo;
  (void)up;
  const LinkId id(static_cast<LinkId::underlying_type>(links_.size()));
  Link link;
  link.id = id;
  link.lower = lower;
  link.upper = upper;
  links_.push_back(link);
  enabled_mask_.push_back(true);
  switches_[lower.index()].uplinks.push_back(id);
  switches_[upper.index()].downlinks.push_back(id);
  ++enabled_links_;
  return id;
}

void Topology::set_breakout_group(LinkId id, int group) {
  assert(group >= -1);
  links_[id.index()].breakout_group = group;
  if (group >= next_breakout_group_) next_breakout_group_ = group + 1;
}

int Topology::assign_breakout_groups(int group_size, int lower_level) {
  assert(group_size >= 2);
  int groups = 0;
  for (Switch& sw : switches_) {
    if (lower_level >= 0 && sw.level != lower_level) continue;
    for (std::size_t start = 0; start + group_size <= sw.uplinks.size();
         start += static_cast<std::size_t>(group_size)) {
      const int group = next_breakout_group_++;
      ++groups;
      for (int offset = 0; offset < group_size; ++offset) {
        links_[sw.uplinks[start + static_cast<std::size_t>(offset)].index()]
            .breakout_group = group;
      }
    }
  }
  return groups;
}

const Switch& Topology::switch_at(SwitchId id) const {
  assert(id.valid() && id.index() < switches_.size());
  return switches_[id.index()];
}

const Link& Topology::link_at(LinkId id) const {
  assert(id.valid() && id.index() < links_.size());
  return links_[id.index()];
}

const std::vector<SwitchId>& Topology::switches_at_level(int level) const {
  static const std::vector<SwitchId> kEmpty;
  if (level < 0 || level >= level_count_) return kEmpty;
  return by_level_[static_cast<std::size_t>(level)];
}

void Topology::set_enabled(LinkId id, bool enabled) {
  assert(id.valid() && id.index() < links_.size());
  if (enabled_mask_.test(id.index()) == enabled) return;
  enabled_mask_.set(id.index(), enabled);
  enabled_links_ += enabled ? 1 : -1;
  ++version_;
}

SwitchId Topology::transmitter(DirectionId dir) const {
  const Link& link = link_at(link_of(dir));
  return direction_of(dir) == LinkDirection::kUp ? link.lower : link.upper;
}

SwitchId Topology::receiver(DirectionId dir) const {
  const Link& link = link_at(link_of(dir));
  return direction_of(dir) == LinkDirection::kUp ? link.upper : link.lower;
}

std::vector<LinkId> Topology::breakout_peers(LinkId id) const {
  const Link& link = link_at(id);
  if (link.breakout_group < 0) return {id};
  std::vector<LinkId> peers;
  // Breakout groups bundle uplinks of a single switch, so scanning that
  // switch's uplinks finds all members without a global pass.
  for (LinkId candidate : switch_at(link.lower).uplinks) {
    if (link_at(candidate).breakout_group == link.breakout_group) {
      peers.push_back(candidate);
    }
  }
  return peers;
}

void Topology::validate() const {
  for (const Link& link : links_) {
    const Switch& lo = switch_at(link.lower);
    const Switch& up = switch_at(link.upper);
    if (lo.level + 1 != up.level) {
      CORROPT_LOG_ERROR << "link " << link.id.value()
                        << " spans non-adjacent levels " << lo.level
                        << " and " << up.level;
      std::abort();
    }
  }
  std::size_t uplink_total = 0;
  std::size_t downlink_total = 0;
  for (const Switch& sw : switches_) {
    uplink_total += sw.uplinks.size();
    downlink_total += sw.downlinks.size();
    for (LinkId id : sw.uplinks) {
      if (link_at(id).lower != sw.id) {
        CORROPT_LOG_ERROR << "uplink list corrupt at switch "
                          << sw.id.value();
        std::abort();
      }
    }
    for (LinkId id : sw.downlinks) {
      if (link_at(id).upper != sw.id) {
        CORROPT_LOG_ERROR << "downlink list corrupt at switch "
                          << sw.id.value();
        std::abort();
      }
    }
  }
  if (uplink_total != links_.size() || downlink_total != links_.size()) {
    CORROPT_LOG_ERROR << "endpoint link lists do not cover all links";
    std::abort();
  }
}

void Topology::snapshot_to(common::snap::Writer& w) const {
  w.section(common::snap::tag('T', 'O', 'P', 'O'), 1);
  w.u64(links_.size());
  for (std::uint64_t word : enabled_mask_.words()) w.u64(word);
  w.u64(enabled_links_);
  w.u64(version_);
}

void Topology::restore_from(common::snap::Reader& r) {
  r.expect_section(common::snap::tag('T', 'O', 'P', 'O'));
  const std::uint64_t links = r.u64();
  if (links != links_.size()) {
    common::snap::fail("topology link count mismatch");
  }
  const std::size_t words = enabled_mask_.words().size();
  std::size_t bit = 0;
  for (std::size_t wi = 0; wi < words; ++wi) {
    const std::uint64_t word = r.u64();
    for (; bit < links_.size() && bit < (wi + 1) * 64; ++bit) {
      enabled_mask_.set(bit, ((word >> (bit % 64)) & 1) != 0);
    }
  }
  enabled_links_ = r.u64();
  version_ = r.u64();
}

}  // namespace corropt::topology
