#include "topology/io.h"

#include <istream>
#include <ostream>
#include <string>

#include "common/csv.h"

namespace corropt::topology {

namespace {

bool fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

bool parse_int(const std::string& field, long long* out) {
  try {
    std::size_t used = 0;
    *out = std::stoll(field, &used);
    return used == field.size();
  } catch (...) {
    return false;
  }
}

}  // namespace

void write_topology(std::ostream& out, const Topology& topo) {
  common::CsvWriter csv(out);
  for (const Switch& sw : topo.switches()) {
    csv.row("switch", sw.id.value(), sw.level, sw.pod, sw.name);
  }
  for (const Link& link : topo.links()) {
    csv.row("link", link.id.value(), link.lower.value(), link.upper.value(),
            topo.is_enabled(link.id) ? 1 : 0, link.breakout_group);
  }
}

std::optional<Topology> read_topology(std::istream& in, std::string* error) {
  Topology topo;
  std::string line;
  std::size_t line_number = 0;
  bool seen_link = false;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    const std::vector<std::string> fields = common::parse_csv_row(line);
    const std::string at = " at line " + std::to_string(line_number);
    if (fields[0] == "switch") {
      if (seen_link) {
        fail(error, "switch row after link rows" + at);
        return std::nullopt;
      }
      if (fields.size() != 5) {
        fail(error, "switch row needs 5 fields" + at);
        return std::nullopt;
      }
      long long id = 0, level = 0, pod = 0;
      if (!parse_int(fields[1], &id) || !parse_int(fields[2], &level) ||
          !parse_int(fields[3], &pod) || level < 0) {
        fail(error, "malformed switch row" + at);
        return std::nullopt;
      }
      if (static_cast<std::size_t>(id) != topo.switch_count()) {
        fail(error, "switch ids must be dense and ascending" + at);
        return std::nullopt;
      }
      topo.add_switch(static_cast<int>(level), fields[4],
                      static_cast<int>(pod));
    } else if (fields[0] == "link") {
      seen_link = true;
      if (fields.size() != 6) {
        fail(error, "link row needs 6 fields" + at);
        return std::nullopt;
      }
      long long id = 0, lower = 0, upper = 0, enabled = 0, group = 0;
      if (!parse_int(fields[1], &id) || !parse_int(fields[2], &lower) ||
          !parse_int(fields[3], &upper) || !parse_int(fields[4], &enabled) ||
          !parse_int(fields[5], &group)) {
        fail(error, "malformed link row" + at);
        return std::nullopt;
      }
      if (static_cast<std::size_t>(id) != topo.link_count()) {
        fail(error, "link ids must be dense and ascending" + at);
        return std::nullopt;
      }
      if (lower < 0 ||
          static_cast<std::size_t>(lower) >= topo.switch_count() ||
          upper < 0 ||
          static_cast<std::size_t>(upper) >= topo.switch_count()) {
        fail(error, "link references unknown switch" + at);
        return std::nullopt;
      }
      const common::SwitchId lo(
          static_cast<common::SwitchId::underlying_type>(lower));
      const common::SwitchId hi(
          static_cast<common::SwitchId::underlying_type>(upper));
      if (topo.switch_at(lo).level + 1 != topo.switch_at(hi).level) {
        fail(error, "link endpoints on non-adjacent levels" + at);
        return std::nullopt;
      }
      const common::LinkId link = topo.add_link(lo, hi);
      if (enabled == 0) topo.set_enabled(link, false);
      if (group >= -1) topo.set_breakout_group(link, static_cast<int>(group));
    } else {
      fail(error, "unknown row kind '" + fields[0] + "'" + at);
      return std::nullopt;
    }
  }
  topo.validate();
  return topo;
}

}  // namespace corropt::topology
