// Topology serialization.
//
// Operators do not build their DCN in code: the controller loads the
// topology from the network-state service. This module round-trips a
// Topology through a simple two-section CSV format so experiments can be
// run against externally described networks and degraded states can be
// checkpointed:
//
//   switch,<id>,<level>,<pod>,<name>
//   link,<id>,<lower>,<upper>,<enabled>,<breakout_group>
//
// Rows must be grouped switches-first; ids must be dense and ascending
// (the natural output of write_topology).
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "topology/topology.h"

namespace corropt::topology {

void write_topology(std::ostream& out, const Topology& topo);

// Parses what write_topology emits. Returns std::nullopt (and sets
// `error` when provided) on malformed input: unknown row kinds,
// non-dense ids, links referencing unknown switches or non-adjacent
// levels.
[[nodiscard]] std::optional<Topology> read_topology(
    std::istream& in, std::string* error = nullptr);

}  // namespace corropt::topology
