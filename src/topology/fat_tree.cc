#include "topology/fat_tree.h"

#include <cassert>

namespace corropt::topology {

XgftSpec fat_tree_spec(int k) {
  assert(k >= 2 && k % 2 == 0);
  XgftSpec spec;
  // Level 0 (ToR) -> level 1 (Agg): each Agg serves k/2 ToRs, each ToR
  // has k/2 Agg parents. Level 1 -> level 2 (spine): each spine serves
  // one Agg per pod (k pods), each Agg has k/2 spine parents.
  spec.children_per_node = {k / 2, k};
  spec.parents_per_node = {k / 2, k / 2};
  return spec;
}

Topology build_fat_tree(int k) { return build_xgft(fat_tree_spec(k)); }

Topology build_clos(const ClosSpec& spec) {
  assert(spec.pods > 0 && spec.tors_per_pod > 0 && spec.aggs_per_pod > 0 &&
         spec.spine_group_size > 0);
  XgftSpec xgft;
  xgft.children_per_node = {spec.tors_per_pod, spec.pods};
  xgft.parents_per_node = {spec.aggs_per_pod, spec.spine_group_size};
  return build_xgft(xgft);
}

namespace {

// Breakout-cable structure shared by the evaluation topologies: ToR
// uplinks ride 2-way breakouts (e.g. one 100G port split to 2x50G) and
// aggregation uplinks ride 8-way bundles toward the spine. Shared-
// component faults (Section 4, root cause 5) strike whole bundles; the
// bundle widths relative to the per-switch disable budgets are what
// separates switch-local checking from CorrOpt's global view.
void add_breakout_structure(Topology& topo) {
  topo.assign_breakout_groups(2, /*lower_level=*/0);
  topo.assign_breakout_groups(8, /*lower_level=*/1);
}

}  // namespace

Topology build_large_dcn() {
  // ~34K links (paper: O(35K)). ToRs keep a production-realistic 12
  // uplinks; the pod and spine widths set the scale. Narrow ToR radix is
  // what makes capacity constraints bind the way the paper reports (up
  // to 15% of corrupting links cannot be disabled under demanding
  // configurations).
  ClosSpec spec;
  spec.pods = 36;
  spec.tors_per_pod = 56;
  spec.aggs_per_pod = 12;
  spec.spine_group_size = 20;
  Topology topo = build_clos(spec);
  add_breakout_structure(topo);
  return topo;
}

Topology build_medium_dcn() {
  // ~16K links (paper: O(15K)).
  ClosSpec spec;
  spec.pods = 24;
  spec.tors_per_pod = 40;
  spec.aggs_per_pod = 12;
  spec.spine_group_size = 16;
  Topology topo = build_clos(spec);
  add_breakout_structure(topo);
  return topo;
}

}  // namespace corropt::topology
