// Multi-stage data center topology model.
//
// The paper studies ToR-Agg-Spine Clos networks (Section 5.1) in which
// every inter-switch link is a bidirectional optical link. We model the
// topology as a leveled DAG: level 0 holds the top-of-rack switches and
// the highest level holds the spine. Every link connects adjacent levels
// ("valley-free" paths are exactly the strictly-upward paths from a ToR
// to the spine). Each physical link carries two directions that can fail
// independently (corruption is asymmetric, Section 3) but is enabled or
// disabled as a unit, matching the constraint that current hardware has
// no unidirectional links (Section 3, footnote 3).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/bitset.h"
#include "common/ids.h"
#include "common/snapshot.h"

namespace corropt::topology {

using common::DirectionId;
using common::LinkId;
using common::SwitchId;

struct Switch {
  SwitchId id;
  // 0 = ToR; highest level = spine.
  int level = 0;
  // Pod the switch belongs to, or -1 for switches above the pod layer
  // (spines). Builders fill this in; hand-built topologies may leave it.
  int pod = -1;
  std::string name;
  // Links whose `lower` endpoint is this switch (toward the spine).
  std::vector<LinkId> uplinks;
  // Links whose `upper` endpoint is this switch (toward the ToRs).
  std::vector<LinkId> downlinks;
};

// Structural description of one bidirectional link. Mutable link status
// (enabled/disabled) is NOT stored here: it lives in the topology's flat
// `enabled_mask()` bitset, indexed by link id, so state sweeps stream over
// one dense array instead of striding through this struct. Query it via
// Topology::is_enabled().
struct Link {
  LinkId id;
  // Endpoint at level l.
  SwitchId lower;
  // Endpoint at level l + 1.
  SwitchId upper;
  // Links sharing a breakout cable get the same non-negative group id;
  // -1 means the link has a dedicated cable. Shared-component faults
  // (root cause 5, Section 4) strike whole groups.
  int breakout_group = -1;
};

// Identifies one direction of a link. Direction ids are derived from link
// ids: up direction = 2 * link, down direction = 2 * link + 1.
enum class LinkDirection : std::uint8_t { kUp = 0, kDown = 1 };

[[nodiscard]] constexpr DirectionId direction_id(LinkId link,
                                                 LinkDirection dir) {
  return DirectionId(2 * link.value() +
                     (dir == LinkDirection::kDown ? 1 : 0));
}

[[nodiscard]] constexpr LinkId link_of(DirectionId dir) {
  return LinkId(dir.value() / 2);
}

[[nodiscard]] constexpr LinkDirection direction_of(DirectionId dir) {
  return dir.value() % 2 == 0 ? LinkDirection::kUp : LinkDirection::kDown;
}

[[nodiscard]] constexpr DirectionId opposite(DirectionId dir) {
  return DirectionId(dir.value() ^ 1u);
}

class Topology {
 public:
  // --- construction -------------------------------------------------
  SwitchId add_switch(int level, std::string name = {}, int pod = -1);
  // Endpoints must be on adjacent levels; `lower` one level below `upper`.
  LinkId add_link(SwitchId lower, SwitchId upper);
  // Assigns an explicit breakout group to one link (used when loading a
  // serialized topology); group must be >= -1.
  void set_breakout_group(LinkId id, int group);

  // Marks consecutive uplinks of switches as sharing breakout cables,
  // in bundles of `group_size`. With `lower_level` >= 0, only uplinks of
  // switches at that level are grouped (e.g. pair up ToR uplinks and
  // bundle aggregation uplinks separately); -1 groups every level.
  // Returns the number of groups formed.
  int assign_breakout_groups(int group_size, int lower_level = -1);

  // --- basic accessors ----------------------------------------------
  [[nodiscard]] std::size_t switch_count() const { return switches_.size(); }
  [[nodiscard]] std::size_t link_count() const { return links_.size(); }
  [[nodiscard]] std::size_t direction_count() const {
    return 2 * links_.size();
  }
  [[nodiscard]] const Switch& switch_at(SwitchId id) const;
  [[nodiscard]] const Link& link_at(LinkId id) const;
  [[nodiscard]] std::span<const Switch> switches() const { return switches_; }
  [[nodiscard]] std::span<const Link> links() const { return links_; }
  // Number of levels (top level index + 1); 0 for an empty topology.
  [[nodiscard]] int level_count() const { return level_count_; }
  [[nodiscard]] int top_level() const { return level_count_ - 1; }
  // All switches at a level, in id order.
  [[nodiscard]] const std::vector<SwitchId>& switches_at_level(
      int level) const;
  [[nodiscard]] const std::vector<SwitchId>& tors() const {
    return switches_at_level(0);
  }

  // --- link state ----------------------------------------------------
  [[nodiscard]] bool is_enabled(LinkId id) const {
    return enabled_mask_.test(id.index());
  }
  void set_enabled(LinkId id, bool enabled);
  // One bit per link, set iff enabled — the single source of truth for
  // administrative link status. Sweeps (optimizer feasibility, path
  // counting, capacity sampling) test state word-at-a-time here without
  // touching the structural Link array.
  [[nodiscard]] const common::DynamicBitset& enabled_mask() const {
    return enabled_mask_;
  }
  [[nodiscard]] std::size_t enabled_link_count() const {
    return enabled_links_;
  }
  // Monotonic counter bumped by every effective link-state change;
  // consumers (e.g. the fast checker's path-count cache) use it to
  // detect staleness.
  [[nodiscard]] std::uint64_t state_version() const { return version_; }

  // --- checkpointing (DESIGN.md §14) ---------------------------------
  // Serializes the dynamic link state: the enabled bitset, the enabled
  // count, and the monotonic state version (restored faithfully so that
  // version-keyed caches — the fast checker's path counts, the
  // optimizer's baseline — stay coherent across a restore). Structure
  // (switches, links, breakout groups) is not serialized: restore
  // targets a topology rebuilt by the same factory, guarded by the
  // link count.
  void snapshot_to(common::snap::Writer& w) const;
  void restore_from(common::snap::Reader& r);

  // --- direction helpers ----------------------------------------------
  // Switch transmitting on this direction.
  [[nodiscard]] SwitchId transmitter(DirectionId dir) const;
  // Switch receiving on this direction.
  [[nodiscard]] SwitchId receiver(DirectionId dir) const;

  // Links in the same breakout group as `id` (including `id` itself);
  // just {id} for ungrouped links.
  [[nodiscard]] std::vector<LinkId> breakout_peers(LinkId id) const;

  // Sanity checks structural invariants (levels adjacent, endpoint link
  // lists consistent); aborts on violation. Builders call this once.
  void validate() const;

 private:
  std::vector<Switch> switches_;
  std::vector<Link> links_;
  common::DynamicBitset enabled_mask_;
  std::vector<std::vector<SwitchId>> by_level_;
  int level_count_ = 0;
  std::size_t enabled_links_ = 0;
  std::uint64_t version_ = 0;
  int next_breakout_group_ = 0;
};

}  // namespace corropt::topology
