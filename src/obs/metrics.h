// Observability: metrics registry for the CorrOpt control loop.
//
// The controller, optimizer, fast checker, telemetry pipeline and the
// mitigation simulation all accumulate operational counts (decisions
// taken, subsets evaluated, polls answered) and latencies. MetricsRegistry
// gives them one uniform, thread-safe place to put those numbers:
//
//   * Counters and histograms write through per-thread shards of relaxed
//     atomics (cache-line padded), so a hot-path increment is one
//     uncontended fetch_add; shards are folded only on snapshot.
//   * Gauges are single relaxed atomics (last write wins) for values that
//     are set, not accumulated (current penalty rate, disabled links).
//   * Histograms have fixed bucket upper bounds chosen at registration;
//     recording is a branchless-ish upper_bound plus one shard increment.
//     Histograms registered via timer() hold wall-clock seconds fed by
//     obs::ScopedTimer and are segregated in snapshots: wall time is not
//     covered by the determinism contract (DESIGN.md §8), exactly like
//     the `wall_seconds` field of the bench JSON.
//
// Handles (Counter/Gauge/Histogram) are cheap value types resolved once
// by name; a default-constructed handle is inert and ignores writes, so
// instrumented code needs no null checks when observability is detached.
//
// Snapshots serialize through common::JsonWriter under the
// corropt-obs-metrics/1 schema (EXPERIMENTS.md).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace corropt::common {
class JsonWriter;
}

namespace corropt::obs {

// Number of write shards. A power of two a bit above the core counts we
// target keeps collisions (two threads sharing a shard) rare without
// bloating fold cost.
inline constexpr std::size_t kMetricShards = 16;

namespace detail {

// Stable, small per-thread shard slot. Threads are assigned slots
// round-robin on first use; values are exact regardless of which shard
// a write lands in.
[[nodiscard]] std::size_t thread_shard();

struct alignas(64) ShardCell {
  std::atomic<std::uint64_t> value{0};
};

struct CounterEntry {
  std::string name;
  std::array<ShardCell, kMetricShards> cells;
};

struct GaugeEntry {
  std::string name;
  std::atomic<double> value{0.0};
};

struct HistogramEntry {
  std::string name;
  // True for timer() registrations: values are wall-clock seconds and the
  // snapshot segregates them from deterministic histograms.
  bool is_timer = false;
  // Ascending upper bounds; an implicit +inf bucket follows the last.
  std::vector<double> bounds;
  // kMetricShards * (bounds.size() + 1) cells, shard-major.
  std::vector<ShardCell> counts;
  std::array<std::atomic<double>, kMetricShards> sums{};
};

// Relaxed add for atomic<double> (no fetch_add for floating point).
inline void atomic_add(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed,
                                  std::memory_order_relaxed)) {
  }
}

}  // namespace detail

class Counter {
 public:
  Counter() = default;
  void add(std::uint64_t n = 1) const {
    if (entry_ == nullptr) return;
    entry_->cells[detail::thread_shard()].value.fetch_add(
        n, std::memory_order_relaxed);
  }
  [[nodiscard]] explicit operator bool() const { return entry_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Counter(detail::CounterEntry* entry) : entry_(entry) {}
  detail::CounterEntry* entry_ = nullptr;
};

class Gauge {
 public:
  Gauge() = default;
  void set(double v) const {
    if (entry_ != nullptr) entry_->value.store(v, std::memory_order_relaxed);
  }
  void add(double v) const {
    if (entry_ != nullptr) detail::atomic_add(entry_->value, v);
  }
  [[nodiscard]] explicit operator bool() const { return entry_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(detail::GaugeEntry* entry) : entry_(entry) {}
  detail::GaugeEntry* entry_ = nullptr;
};

class Histogram {
 public:
  Histogram() = default;
  void record(double v) const;
  [[nodiscard]] explicit operator bool() const { return entry_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Histogram(detail::HistogramEntry* entry) : entry_(entry) {}
  detail::HistogramEntry* entry_ = nullptr;
};

// Folded, plain-data view of a registry at one instant.
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    double value = 0.0;
  };
  struct HistogramValue {
    std::string name;
    std::vector<double> bounds;
    // bounds.size() + 1 entries; the last is the +inf overflow bucket.
    std::vector<std::uint64_t> counts;
    std::uint64_t count = 0;
    double sum = 0.0;
  };

  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;
  // timer() registrations: wall-clock latencies, excluded from the
  // determinism contract.
  std::vector<HistogramValue> timers;

  // Writes the snapshot body (counters/gauges/histograms[/timers]
  // members) into an already-open JSON object. Timers are skippable so
  // regression tooling can compare fully deterministic documents.
  void write_json(common::JsonWriter& json, bool include_timers = true) const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Get-or-create by name. Re-registering a name returns the existing
  // metric; registering it as a different kind throws std::logic_error.
  [[nodiscard]] Counter counter(std::string_view name);
  [[nodiscard]] Gauge gauge(std::string_view name);
  // `bounds` are ascending bucket upper bounds; a +inf bucket is
  // implicit. Re-registration ignores the new bounds.
  [[nodiscard]] Histogram histogram(std::string_view name,
                                    std::vector<double> bounds);
  // Latency histogram in seconds (default bounds 1 µs .. 10 s, decade
  // steps with 1-3 subdivisions), fed by obs::ScopedTimer, reported in
  // the snapshot's separate non-deterministic "timers" section.
  [[nodiscard]] Histogram timer(std::string_view name);

  // Folds all shards. Metrics appear in registration order, which is
  // deterministic whenever registration happens on one thread.
  [[nodiscard]] MetricsSnapshot snapshot() const;

  // Full corropt-obs-metrics/1 document with a single scenario named
  // `scenario` (the multi-scenario variant lives in bench/).
  void write_json(std::ostream& out, const std::string& exhibit,
                  const std::string& generator,
                  const std::string& scenario = "all") const;

  // Checkpointing (DESIGN.md §14): overwrites current values from a
  // previously captured snapshot. Existing entries are set exactly (the
  // value folds into shard 0, other shards zeroed); entries in `snap`
  // that were never registered here are created only when they carry a
  // nonzero value, so a same-config branch keeps a registration order
  // (and therefore snapshot order) identical to a fresh run, while a
  // cross-backend counterfactual still carries over the prefix's counts.
  // Entries registered here but absent from `snap` are zeroed. Timers
  // are left untouched: wall time is outside the determinism contract.
  void restore(const MetricsSnapshot& snap);

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  Histogram histogram_impl(std::string_view name, std::vector<double> bounds,
                           bool is_timer);

  mutable std::mutex mu_;
  // Deques: stable addresses for the handles.
  std::deque<detail::CounterEntry> counters_;
  std::deque<detail::GaugeEntry> gauges_;
  std::deque<detail::HistogramEntry> histograms_;
  std::unordered_map<std::string, std::pair<Kind, std::size_t>> index_;
};

}  // namespace corropt::obs
