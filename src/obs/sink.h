// Observability: the sink handed to instrumented components.
//
// A Sink bundles the three optional backends — metrics registry, event
// journal, trace recorder — plus the simulation clock the journal stamps
// records with. Components (corropt::Controller, MitigationSimulation,
// Optimizer, FastChecker, PollingMonitor) hold a `Sink*` that defaults
// to nullptr; with no sink attached the instrumentation compiles down to
// a pointer test, and behaviour is identical either way (the sink is
// write-only — nothing in the control loop ever reads it back).
//
// The driving event loop owns the clock: MitigationSimulation advances
// `now` before dispatching each event, so everything emitted downstream
// (controller verdicts, optimizer runs) carries the right SimTime
// without the controller needing a clock of its own.
#pragma once

#include "common/time.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/timer.h"

namespace corropt::obs {

struct Sink {
  MetricsRegistry* metrics = nullptr;
  EventJournal* journal = nullptr;
  TraceRecorder* trace = nullptr;
  // Simulation clock, advanced by the driving event loop.
  common::SimTime now = 0;

  // Stamps the clock and appends; no-op without a journal.
  void emit(Event event) {
    if (journal == nullptr) return;
    event.time = now;
    journal->append(event);
  }
};

}  // namespace corropt::obs
