#include "obs/journal.h"

#include "common/json.h"

namespace corropt::obs {

std::string_view kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kCorruptionDetected:
      return "corruption_detected";
    case EventKind::kFastCheckVerdict:
      return "fast_check";
    case EventKind::kLinkDisabled:
      return "link_disabled";
    case EventKind::kLinkEnabled:
      return "link_enabled";
    case EventKind::kCorruptionCleared:
      return "corruption_cleared";
    case EventKind::kTicketOpened:
      return "ticket_opened";
    case EventKind::kTicketClosed:
      return "ticket_closed";
    case EventKind::kOptimizerRun:
      return "optimizer_run";
    case EventKind::kRepairAttempt:
      return "repair_attempt";
    case EventKind::kRedetection:
      return "redetection";
    case EventKind::kMaintenanceStart:
      return "maintenance_start";
    case EventKind::kMaintenanceEnd:
      return "maintenance_end";
    case EventKind::kPolledDetection:
      return "polled_detection";
    case EventKind::kPenaltySample:
      return "penalty_sample";
    case EventKind::kFaultInjected:
      return "fault_injected";
    case EventKind::kDetectionVerdict:
      return "detection_verdict";
  }
  return "unknown";
}

std::string_view reason_name(EventReason reason) {
  switch (reason) {
    case EventReason::kNone:
      return "";
    case EventReason::kArrival:
      return "arrival";
    case EventReason::kActivation:
      return "activation";
    case EventReason::kDisabledVerdict:
      return "disabled";
    case EventReason::kRefusedCapacity:
      return "refused_capacity";
    case EventReason::kAlreadyDisabled:
      return "already_disabled";
    case EventReason::kSucceeded:
      return "succeeded";
    case EventReason::kFailed:
      return "failed";
  }
  return "unknown";
}

void write_event_jsonl(std::ostream& out, const Event& event,
                       std::string_view scenario) {
  // Hand-assembled single line (JsonWriter pretty-prints); strings still
  // go through the one escaping implementation in common/json.h.
  out << '{';
  if (!scenario.empty()) {
    out << "\"scenario\":\"" << common::json_escape(scenario) << "\",";
  }
  out << "\"seq\":" << event.seq << ",\"t\":" << event.time << ",\"kind\":\""
      << kind_name(event.kind) << '"';
  if (event.reason != EventReason::kNone) {
    out << ",\"reason\":\"" << reason_name(event.reason) << '"';
  }
  if (event.link.valid()) out << ",\"link\":" << event.link.value();
  if (event.sw.valid()) out << ",\"switch\":" << event.sw.value();
  if (event.ticket.valid()) out << ",\"ticket\":" << event.ticket.value();
  out << ",\"value\":" << common::json_number(event.value);
  if (event.value2 != 0.0) {
    out << ",\"value2\":" << common::json_number(event.value2);
  }
  if (event.detail0 != 0) out << ",\"d0\":" << event.detail0;
  if (event.detail1 != 0) out << ",\"d1\":" << event.detail1;
  out << '}';
}

EventJournal::EventJournal(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void EventJournal::append(Event event) {
  std::lock_guard<std::mutex> lock(mu_);
  event.seq = next_seq_++;
  if (ring_.size() < capacity_) {
    ring_.push_back(event);
    return;
  }
  ring_[head_] = event;
  head_ = (head_ + 1) % capacity_;
  ++dropped_;
}

std::size_t EventJournal::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

std::uint64_t EventJournal::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::vector<Event> EventJournal::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Event> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

void EventJournal::write_jsonl(std::ostream& out) const {
  for (const Event& event : snapshot()) {
    write_event_jsonl(out, event);
    out << '\n';
  }
}

void EventJournal::restore(const std::vector<Event>& events,
                           std::uint64_t next_seq, std::uint64_t dropped) {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  head_ = 0;
  if (events.size() <= capacity_) {
    ring_ = events;
  } else {
    // This journal is smaller than the one that produced the snapshot:
    // keep the newest `capacity_` records, count the rest as evicted,
    // exactly as if they had been appended in order.
    ring_.assign(events.end() - static_cast<std::ptrdiff_t>(capacity_),
                 events.end());
    dropped += events.size() - capacity_;
  }
  next_seq_ = next_seq;
  dropped_ = dropped;
}

void EventJournal::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  head_ = 0;
  dropped_ = 0;
  // next_seq_ keeps counting: sequence numbers identify events for the
  // journal's lifetime, not per segment.
}

}  // namespace corropt::obs
