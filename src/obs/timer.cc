#include "obs/timer.h"

#include "common/json.h"

namespace corropt::obs {

TraceRecorder::TraceRecorder(std::size_t capacity)
    : capacity_(capacity), origin_(std::chrono::steady_clock::now()) {}

void TraceRecorder::record(const char* name,
                           std::chrono::steady_clock::time_point begin,
                           std::chrono::steady_clock::time_point end) {
  std::lock_guard<std::mutex> lock(mu_);
  if (spans_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  Span span;
  span.name = name == nullptr ? "span" : name;
  span.start_us =
      std::chrono::duration<double, std::micro>(begin - origin_).count();
  span.dur_us = std::chrono::duration<double, std::micro>(end - begin).count();
  span.tid = static_cast<std::uint32_t>(detail::thread_shard());
  spans_.push_back(span);
}

std::size_t TraceRecorder::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

std::uint64_t TraceRecorder::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void TraceRecorder::write_chrome_trace(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  common::JsonWriter json(out);
  json.begin_object();
  json.member("displayTimeUnit", "ms");
  json.key("traceEvents").begin_array();
  for (const Span& span : spans_) {
    json.begin_object();
    json.member("name", span.name);
    json.member("ph", "X");
    json.member("pid", 1);
    json.member("tid", static_cast<std::int64_t>(span.tid));
    json.member("ts", span.start_us);
    json.member("dur", span.dur_us);
    json.end_object();
  }
  json.end_array();
  json.end_object();
}

}  // namespace corropt::obs
