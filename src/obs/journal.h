// Observability: the structured decision journal.
//
// Aggregate counters say *how much* happened; the journal says *what*
// happened, in order, attributably — the per-event telemetry that makes
// a mitigation pipeline debuggable at scale (cf. 007, Arzani et al.).
// Every decision in the CorrOpt control loop (corruption detected,
// fast-check verdict, link disabled/enabled, ticket opened/closed,
// optimizer run, repair outcome) is one typed, fixed-size record stamped
// with the simulation clock, the link/switch/ticket it concerns, and a
// monotonic sequence number.
//
// Determinism: the journal is filled from the (single-threaded) event
// loop of the controller/simulation, and the paper exhibits it supports
// carry no wall-clock — so the byte stream produced by write_jsonl() is
// identical for any `solver_threads` / thread-pool size, the same
// contract DESIGN.md §7 states for ScenarioRunner metrics (asserted by
// tests/obs_test.cc).
//
// Storage is a bounded ring: once `capacity` records are held the oldest
// is dropped (and counted), so an attached journal can never make a long
// scenario run out of memory.
#pragma once

#include <cstdint>
#include <mutex>
#include <ostream>
#include <string_view>
#include <vector>

#include "common/ids.h"
#include "common/time.h"

namespace corropt::obs {

enum class EventKind : std::uint8_t {
  // value = link loss rate. The controller was told `link` corrupts.
  kCorruptionDetected,
  // value = loss rate, reason = verdict (kDisabledVerdict /
  // kRefusedCapacity / kAlreadyDisabled).
  kFastCheckVerdict,
  // value = loss rate, reason = kArrival or kActivation.
  kLinkDisabled,
  // Link returned to service after a successful repair.
  kLinkEnabled,
  // Monitoring downgraded its estimate without a repair; value = last
  // known rate.
  kCorruptionCleared,
  // detail0 = attempt number, detail1 = recommended RepairAction index+1
  // (0 when the ticket carries no recommendation).
  kTicketOpened,
  // detail0 = attempt number.
  kTicketClosed,
  // value = disabled penalty, value2 = remaining penalty, detail0 =
  // links disabled by the run, detail1 = subsets_evaluated.
  kOptimizerRun,
  // reason = kSucceeded / kFailed, detail0 = attempt number.
  kRepairAttempt,
  // kEnableAndObserve: monitoring re-caught a failed repair; value =
  // loss rate.
  kRedetection,
  // Collateral modeling; detail0 = healthy siblings taken down.
  kMaintenanceStart,
  kMaintenanceEnd,
  // kPolled detection pipeline verdict; value = estimated rate,
  // detail0 = detection latency in seconds.
  kPolledDetection,
  // value = total penalty per second after the event just handled; the
  // sequence of these records is exactly Figure 14's step function.
  kPenaltySample,
  // detail0 = links struck by the fault, detail1 = root-cause index.
  kFaultInjected,
  // Detection-backend verdict (opt-in detailed obs; DESIGN.md §13).
  // value = estimated rate, value2 = 1.0 when the verdict was a false
  // positive (link below the lossy threshold at verdict time), detail0 =
  // detection latency in seconds (corrupting verdicts with a pending
  // fault only), detail1 = detect::BackendKind index. reason =
  // kSucceeded for corrupting verdicts, kNone for clears.
  kDetectionVerdict,
};

enum class EventReason : std::uint8_t {
  kNone,
  kArrival,           // Disabled by the arrival checker.
  kActivation,        // Disabled on activation (optimizer / recheck).
  kDisabledVerdict,   // Fast check: safe, link disabled.
  kRefusedCapacity,   // Fast check: constraint would break, kept active.
  kAlreadyDisabled,   // Fast check: link was already out of service.
  kSucceeded,
  kFailed,
};

[[nodiscard]] std::string_view kind_name(EventKind kind);
[[nodiscard]] std::string_view reason_name(EventReason reason);

struct Event {
  // Monotonic per-journal sequence number, stamped on append.
  std::uint64_t seq = 0;
  // Simulation clock (seconds); stamped from Sink::now on emit.
  common::SimTime time = 0;
  EventKind kind = EventKind::kPenaltySample;
  EventReason reason = EventReason::kNone;
  // Entities the event concerns; invalid ids mean "not applicable".
  common::LinkId link;
  // Context switch (the link's lower endpoint for link events).
  common::SwitchId sw;
  common::TicketId ticket;
  // Kind-specific payload; see EventKind comments.
  double value = 0.0;
  double value2 = 0.0;
  std::uint64_t detail0 = 0;
  std::uint64_t detail1 = 0;
};

// One event as a single JSONL line (no trailing newline). `scenario`,
// when non-empty, is prepended as a "scenario" member — used by the
// bench runner to concatenate per-job journals into one file.
void write_event_jsonl(std::ostream& out, const Event& event,
                       std::string_view scenario = {});

class EventJournal {
 public:
  explicit EventJournal(std::size_t capacity = 1 << 20);

  // Stamps the sequence number and stores the event; thread-safe. When
  // full, the oldest record is evicted.
  void append(Event event);

  [[nodiscard]] std::size_t size() const;
  // Events evicted by the ring bound.
  [[nodiscard]] std::uint64_t dropped() const;

  // Retained events in sequence order.
  [[nodiscard]] std::vector<Event> snapshot() const;

  // One JSON object per line, in sequence order.
  void write_jsonl(std::ostream& out) const;

  void clear();

  // Checkpointing (DESIGN.md §14): replaces the journal's contents with
  // a previously captured state. `events` must be in sequence order (a
  // snapshot()); only the newest `capacity` of them are retained, exactly
  // as if they had been appended in order.
  void restore(const std::vector<Event>& events, std::uint64_t next_seq,
               std::uint64_t dropped);

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::vector<Event> ring_;
  // Index of the oldest record once the ring has wrapped.
  std::size_t head_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace corropt::obs
