#include "obs/metrics.h"

#include <algorithm>
#include <stdexcept>

#include "common/json.h"

namespace corropt::obs {

namespace detail {

std::size_t thread_shard() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return slot;
}

}  // namespace detail

void Histogram::record(double v) const {
  if (entry_ == nullptr) return;
  const std::vector<double>& bounds = entry_->bounds;
  const std::size_t bucket = static_cast<std::size_t>(
      std::upper_bound(bounds.begin(), bounds.end(), v) - bounds.begin());
  const std::size_t shard = detail::thread_shard();
  const std::size_t stride = bounds.size() + 1;
  entry_->counts[shard * stride + bucket].value.fetch_add(
      1, std::memory_order_relaxed);
  detail::atomic_add(entry_->sums[shard], v);
}

Counter MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(std::string(name));
  if (it != index_.end()) {
    if (it->second.first != Kind::kCounter) {
      throw std::logic_error("obs metric '" + std::string(name) +
                             "' already registered with a different kind");
    }
    return Counter(&counters_[it->second.second]);
  }
  counters_.emplace_back();
  counters_.back().name = std::string(name);
  index_.emplace(std::string(name),
                 std::make_pair(Kind::kCounter, counters_.size() - 1));
  return Counter(&counters_.back());
}

Gauge MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(std::string(name));
  if (it != index_.end()) {
    if (it->second.first != Kind::kGauge) {
      throw std::logic_error("obs metric '" + std::string(name) +
                             "' already registered with a different kind");
    }
    return Gauge(&gauges_[it->second.second]);
  }
  gauges_.emplace_back();
  gauges_.back().name = std::string(name);
  index_.emplace(std::string(name),
                 std::make_pair(Kind::kGauge, gauges_.size() - 1));
  return Gauge(&gauges_.back());
}

Histogram MetricsRegistry::histogram_impl(std::string_view name,
                                          std::vector<double> bounds,
                                          bool is_timer) {
  if (!std::is_sorted(bounds.begin(), bounds.end())) {
    throw std::logic_error("obs histogram '" + std::string(name) +
                           "': bounds must be ascending");
  }
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(std::string(name));
  if (it != index_.end()) {
    if (it->second.first != Kind::kHistogram) {
      throw std::logic_error("obs metric '" + std::string(name) +
                             "' already registered with a different kind");
    }
    return Histogram(&histograms_[it->second.second]);
  }
  histograms_.emplace_back();
  detail::HistogramEntry& entry = histograms_.back();
  entry.name = std::string(name);
  entry.is_timer = is_timer;
  entry.bounds = std::move(bounds);
  entry.counts =
      std::vector<detail::ShardCell>(kMetricShards * (entry.bounds.size() + 1));
  for (std::atomic<double>& sum : entry.sums) {
    sum.store(0.0, std::memory_order_relaxed);
  }
  index_.emplace(std::string(name),
                 std::make_pair(Kind::kHistogram, histograms_.size() - 1));
  return Histogram(&entry);
}

Histogram MetricsRegistry::histogram(std::string_view name,
                                     std::vector<double> bounds) {
  return histogram_impl(name, std::move(bounds), /*is_timer=*/false);
}

Histogram MetricsRegistry::timer(std::string_view name) {
  // 1 µs .. 10 s in 1-3-10 steps: wide enough for both a fast-checker
  // decision (~µs) and a cold large-DCN optimizer run (~ms-s).
  static const std::vector<double> kLatencyBounds = {
      1e-6, 3e-6, 1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3,
      1e-2, 3e-2, 1e-1, 3e-1, 1.0,  3.0,  10.0};
  return histogram_impl(name, kLatencyBounds, /*is_timer=*/true);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const detail::CounterEntry& entry : counters_) {
    std::uint64_t total = 0;
    for (const detail::ShardCell& cell : entry.cells) {
      total += cell.value.load(std::memory_order_relaxed);
    }
    snap.counters.push_back({entry.name, total});
  }
  snap.gauges.reserve(gauges_.size());
  for (const detail::GaugeEntry& entry : gauges_) {
    snap.gauges.push_back(
        {entry.name, entry.value.load(std::memory_order_relaxed)});
  }
  for (const detail::HistogramEntry& entry : histograms_) {
    MetricsSnapshot::HistogramValue value;
    value.name = entry.name;
    value.bounds = entry.bounds;
    const std::size_t stride = entry.bounds.size() + 1;
    value.counts.assign(stride, 0);
    for (std::size_t shard = 0; shard < kMetricShards; ++shard) {
      for (std::size_t bucket = 0; bucket < stride; ++bucket) {
        value.counts[bucket] +=
            entry.counts[shard * stride + bucket].value.load(
                std::memory_order_relaxed);
      }
      value.sum += entry.sums[shard].load(std::memory_order_relaxed);
    }
    for (const std::uint64_t c : value.counts) value.count += c;
    (entry.is_timer ? snap.timers : snap.histograms)
        .push_back(std::move(value));
  }
  return snap;
}

void MetricsRegistry::restore(const MetricsSnapshot& snap) {
  std::lock_guard<std::mutex> lock(mu_);

  const auto set_counter = [](detail::CounterEntry& entry, std::uint64_t v) {
    entry.cells[0].value.store(v, std::memory_order_relaxed);
    for (std::size_t s = 1; s < kMetricShards; ++s) {
      entry.cells[s].value.store(0, std::memory_order_relaxed);
    }
  };
  const auto set_histogram = [](detail::HistogramEntry& entry,
                                const MetricsSnapshot::HistogramValue& v) {
    if (entry.bounds != v.bounds) {
      throw std::logic_error("obs histogram '" + entry.name +
                             "': restore with different bounds");
    }
    const std::size_t stride = entry.bounds.size() + 1;
    for (std::size_t shard = 0; shard < kMetricShards; ++shard) {
      for (std::size_t bucket = 0; bucket < stride; ++bucket) {
        entry.counts[shard * stride + bucket].value.store(
            shard == 0 ? v.counts[bucket] : 0, std::memory_order_relaxed);
      }
      entry.sums[shard].store(shard == 0 ? v.sum : 0.0,
                              std::memory_order_relaxed);
    }
  };

  // Pass 1: overwrite or (when nonzero) create every snapshot entry.
  for (const MetricsSnapshot::CounterValue& c : snap.counters) {
    const auto it = index_.find(c.name);
    if (it != index_.end()) {
      if (it->second.first != Kind::kCounter) {
        throw std::logic_error("obs metric '" + c.name +
                               "' restored with a different kind");
      }
      set_counter(counters_[it->second.second], c.value);
    } else if (c.value != 0) {
      counters_.emplace_back();
      counters_.back().name = c.name;
      set_counter(counters_.back(), c.value);
      index_.emplace(c.name,
                     std::make_pair(Kind::kCounter, counters_.size() - 1));
    }
  }
  for (const MetricsSnapshot::GaugeValue& g : snap.gauges) {
    const auto it = index_.find(g.name);
    if (it != index_.end()) {
      if (it->second.first != Kind::kGauge) {
        throw std::logic_error("obs metric '" + g.name +
                               "' restored with a different kind");
      }
      gauges_[it->second.second].value.store(g.value,
                                             std::memory_order_relaxed);
    } else if (g.value != 0.0) {
      gauges_.emplace_back();
      gauges_.back().name = g.name;
      gauges_.back().value.store(g.value, std::memory_order_relaxed);
      index_.emplace(g.name, std::make_pair(Kind::kGauge, gauges_.size() - 1));
    }
  }
  for (const MetricsSnapshot::HistogramValue& h : snap.histograms) {
    const auto it = index_.find(h.name);
    if (it != index_.end()) {
      if (it->second.first != Kind::kHistogram) {
        throw std::logic_error("obs metric '" + h.name +
                               "' restored with a different kind");
      }
      set_histogram(histograms_[it->second.second], h);
    } else if (h.count != 0) {
      histograms_.emplace_back();
      detail::HistogramEntry& entry = histograms_.back();
      entry.name = h.name;
      entry.is_timer = false;
      entry.bounds = h.bounds;
      entry.counts = std::vector<detail::ShardCell>(
          kMetricShards * (entry.bounds.size() + 1));
      set_histogram(entry, h);
      index_.emplace(h.name,
                     std::make_pair(Kind::kHistogram, histograms_.size() - 1));
    }
  }

  // Pass 2: zero entries registered here that the snapshot does not
  // mention (the snapshot may come from a branch point before this
  // registry's later registrations — their counts had not happened yet).
  const auto in_counters = [&snap](const std::string& name) {
    for (const auto& c : snap.counters) {
      if (c.name == name) return true;
    }
    return false;
  };
  const auto in_gauges = [&snap](const std::string& name) {
    for (const auto& g : snap.gauges) {
      if (g.name == name) return true;
    }
    return false;
  };
  const auto in_histograms = [&snap](const std::string& name) {
    for (const auto& h : snap.histograms) {
      if (h.name == name) return true;
    }
    return false;
  };
  for (detail::CounterEntry& entry : counters_) {
    if (!in_counters(entry.name)) set_counter(entry, 0);
  }
  for (detail::GaugeEntry& entry : gauges_) {
    if (!in_gauges(entry.name)) {
      entry.value.store(0.0, std::memory_order_relaxed);
    }
  }
  for (detail::HistogramEntry& entry : histograms_) {
    if (entry.is_timer || in_histograms(entry.name)) continue;
    MetricsSnapshot::HistogramValue zero;
    zero.bounds = entry.bounds;
    zero.counts.assign(entry.bounds.size() + 1, 0);
    set_histogram(entry, zero);
  }
}

namespace {

void write_histogram_section(
    common::JsonWriter& json, std::string_view key,
    const std::vector<MetricsSnapshot::HistogramValue>& values) {
  json.key(key).begin_object();
  for (const MetricsSnapshot::HistogramValue& h : values) {
    json.key(h.name).begin_object();
    json.member("count", h.count);
    json.member("sum", h.sum);
    json.member("bounds", h.bounds);
    std::vector<double> counts(h.counts.begin(), h.counts.end());
    json.member("counts", counts);
    json.end_object();
  }
  json.end_object();
}

}  // namespace

void MetricsSnapshot::write_json(common::JsonWriter& json,
                                 bool include_timers) const {
  json.key("counters").begin_object();
  for (const CounterValue& c : counters) json.member(c.name, c.value);
  json.end_object();
  json.key("gauges").begin_object();
  for (const GaugeValue& g : gauges) json.member(g.name, g.value);
  json.end_object();
  write_histogram_section(json, "histograms", histograms);
  if (include_timers) write_histogram_section(json, "timers", timers);
}

void MetricsRegistry::write_json(std::ostream& out, const std::string& exhibit,
                                 const std::string& generator,
                                 const std::string& scenario) const {
  const MetricsSnapshot snap = snapshot();
  common::JsonWriter json(out);
  json.begin_object();
  json.member("schema", "corropt-obs-metrics/1");
  json.member("exhibit", exhibit);
  json.member("generator", generator);
  json.key("scenarios").begin_array();
  json.begin_object();
  json.member("name", scenario);
  snap.write_json(json);
  json.end_object();
  json.end_array();
  json.end_object();
}

}  // namespace corropt::obs
