// Observability: RAII latency timers and chrome://tracing export.
//
// ScopedTimer measures one scope with steady_clock and, on destruction,
// feeds the elapsed seconds into a timer Histogram (see
// MetricsRegistry::timer) and optionally a TraceRecorder span. With an
// inert histogram and no recorder the constructor skips the clock reads
// entirely, so instrumented hot paths cost nothing when observability is
// detached.
//
// TraceRecorder collects named spans and serializes them in the Chrome
// trace_event JSON format ("Trace Event Format", ph:"X" complete events),
// loadable in chrome://tracing or Perfetto to profile where controller
// time goes during a long scenario.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <vector>

#include "obs/metrics.h"

namespace corropt::obs {

class TraceRecorder {
 public:
  // Spans beyond `capacity` are dropped (and counted) rather than growing
  // without bound during long scenarios.
  explicit TraceRecorder(std::size_t capacity = 1 << 20);

  void record(const char* name, std::chrono::steady_clock::time_point begin,
              std::chrono::steady_clock::time_point end);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::uint64_t dropped() const;

  // Chrome trace_event JSON: {"traceEvents": [{"ph": "X", ...}, ...]}.
  // Timestamps are microseconds since the recorder's construction.
  void write_chrome_trace(std::ostream& out) const;

 private:
  struct Span {
    const char* name;  // Must outlive the recorder (string literals).
    double start_us = 0.0;
    double dur_us = 0.0;
    std::uint32_t tid = 0;
  };

  const std::size_t capacity_;
  const std::chrono::steady_clock::time_point origin_;
  mutable std::mutex mu_;
  std::vector<Span> spans_;
  std::uint64_t dropped_ = 0;
};

class ScopedTimer {
 public:
  // `name` is only needed when `trace` is set; it must be a literal (or
  // otherwise outlive the recorder).
  explicit ScopedTimer(Histogram histogram, TraceRecorder* trace = nullptr,
                       const char* name = nullptr)
      : histogram_(histogram),
        trace_(trace),
        name_(name),
        active_(static_cast<bool>(histogram) || trace != nullptr) {
    if (active_) start_ = std::chrono::steady_clock::now();
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    if (!active_) return;
    const auto end = std::chrono::steady_clock::now();
    histogram_.record(std::chrono::duration<double>(end - start_).count());
    if (trace_ != nullptr) trace_->record(name_, start_, end);
  }

 private:
  Histogram histogram_;
  TraceRecorder* trace_;
  const char* name_;
  bool active_;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace corropt::obs
