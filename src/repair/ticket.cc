#include "repair/ticket.h"

#include <algorithm>
#include <cassert>

namespace corropt::repair {

TicketQueue::TicketQueue(TicketQueueParams params) : params_(params) {
  assert(params.technicians >= 0);
  assert(params.service_time > 0);
  crew_free_at_.assign(static_cast<std::size_t>(params.technicians), 0);
}

TicketId TicketQueue::open(LinkId link, SimTime now, int attempt,
                           std::optional<faults::RepairAction> recommendation,
                           std::string rationale) {
  Ticket ticket;
  ticket.id = TicketId(next_id_++);
  ticket.link = link;
  ticket.issued = now;
  ticket.attempt = attempt;
  ticket.recommendation = recommendation;
  ticket.rationale = std::move(rationale);

  if (crew_free_at_.empty()) {
    ticket.scheduled_completion = now + params_.service_time;
  } else {
    // FIFO dispatch to the earliest-free technician.
    auto it = std::min_element(crew_free_at_.begin(), crew_free_at_.end());
    const SimTime start = std::max(*it, now);
    ticket.scheduled_completion = start + params_.service_time;
    *it = ticket.scheduled_completion;
  }

  const TicketId id = ticket.id;
  open_.emplace(id, std::move(ticket));
  return id;
}

const Ticket& TicketQueue::ticket(TicketId id) const {
  const auto it = open_.find(id);
  assert(it != open_.end());
  return it->second;
}

void TicketQueue::close(TicketId id) { open_.erase(id); }

}  // namespace corropt::repair
