#include "repair/ticket.h"

#include <algorithm>
#include <cassert>

namespace corropt::repair {

TicketQueue::TicketQueue(TicketQueueParams params) : params_(params) {
  assert(params.technicians >= 0);
  assert(params.service_time > 0);
  crew_free_at_.assign(static_cast<std::size_t>(params.technicians), 0);
}

TicketId TicketQueue::open(LinkId link, SimTime now, int attempt,
                           std::optional<faults::RepairAction> recommendation,
                           std::string rationale) {
  Ticket ticket;
  ticket.id = TicketId(next_id_++);
  ticket.link = link;
  ticket.issued = now;
  ticket.attempt = attempt;
  ticket.recommendation = recommendation;
  ticket.rationale = std::move(rationale);

  if (crew_free_at_.empty()) {
    ticket.scheduled_completion = now + params_.service_time;
  } else {
    // FIFO dispatch to the earliest-free technician.
    auto it = std::min_element(crew_free_at_.begin(), crew_free_at_.end());
    const SimTime start = std::max(*it, now);
    ticket.scheduled_completion = start + params_.service_time;
    *it = ticket.scheduled_completion;
  }

  const TicketId id = ticket.id;
  open_.emplace(id, std::move(ticket));
  return id;
}

const Ticket& TicketQueue::ticket(TicketId id) const {
  const auto it = open_.find(id);
  assert(it != open_.end());
  return it->second;
}

void TicketQueue::close(TicketId id) { open_.erase(id); }

void TicketQueue::snapshot_to(common::snap::Writer& w) const {
  w.section(common::snap::tag('T', 'C', 'K', 'T'), 1);
  std::vector<TicketId> ids;
  ids.reserve(open_.size());
  for (const auto& [id, ticket] : open_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  w.u64(ids.size());
  for (TicketId id : ids) {
    const Ticket& ticket = open_.at(id);
    w.u32(ticket.id.value());
    w.u32(ticket.link.value());
    w.i64(ticket.issued);
    w.i64(ticket.attempt);
    w.boolean(ticket.recommendation.has_value());
    if (ticket.recommendation.has_value()) {
      w.u8(static_cast<std::uint8_t>(*ticket.recommendation));
    }
    w.str(ticket.rationale);
    w.i64(ticket.scheduled_completion);
  }
  w.u64(crew_free_at_.size());
  for (SimTime t : crew_free_at_) w.i64(t);
  w.u64(next_id_);
}

void TicketQueue::restore_from(common::snap::Reader& r) {
  r.expect_section(common::snap::tag('T', 'C', 'K', 'T'));
  open_.clear();
  const std::uint64_t count = r.u64();
  for (std::uint64_t i = 0; i < count; ++i) {
    Ticket ticket;
    ticket.id = TicketId(r.u32());
    ticket.link = LinkId(r.u32());
    ticket.issued = r.i64();
    ticket.attempt = static_cast<int>(r.i64());
    if (r.boolean()) {
      ticket.recommendation =
          static_cast<faults::RepairAction>(r.u8());
    }
    ticket.rationale = std::string(r.str());
    ticket.scheduled_completion = r.i64();
    const TicketId id = ticket.id;
    open_.emplace(id, std::move(ticket));
  }
  std::vector<SimTime> schedule(r.u64());
  for (SimTime& t : schedule) t = r.i64();
  next_id_ = static_cast<TicketId::underlying_type>(r.u64());

  // Reconcile the serialized crew schedule with this queue's own
  // params_ (which may carry a counterfactual crew size). Same size:
  // verbatim. Grown: new technicians start free at t = 0 (free "now" —
  // dispatch takes max(free, now)). Shrunk (including to unbounded):
  // keep the latest-free technicians so no in-flight completion time
  // is forgotten.
  const auto target = static_cast<std::size_t>(params_.technicians);
  if (schedule.size() == target) {
    crew_free_at_ = std::move(schedule);
  } else {
    std::sort(schedule.begin(), schedule.end());
    crew_free_at_.assign(target, 0);
    const std::size_t keep = std::min(schedule.size(), target);
    for (std::size_t i = 0; i < keep; ++i) {
      crew_free_at_[target - 1 - i] = schedule[schedule.size() - 1 - i];
    }
  }
}

}  // namespace corropt::repair
