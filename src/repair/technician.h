// Technician behaviour models.
//
// Two models, matching the paper's evaluation:
//
//  * Outcome model (Section 7.1 simulations): each repair attempt
//    succeeds with a fixed probability (80% with CorrOpt's
//    recommendations, 50% with today's practice) and any second attempt
//    succeeds, so links return after two or four days.
//  * Action model (Section 7.2 deployment analysis): the technician
//    performs a concrete repair action — the ticket's recommendation
//    with probability p_follow (the paper observed technicians ignoring
//    recommendations 30% of the time), otherwise the legacy root-cause-
//    agnostic escalation sequence — and the attempt succeeds iff the
//    action actually fixes the underlying fault.
#pragma once

#include <optional>

#include "common/rng.h"
#include "faults/repair_action.h"
#include "faults/root_cause.h"

namespace corropt::repair {

// The paper's abstract repair-outcome model.
struct OutcomeModel {
  // Probability the first attempt eliminates corruption.
  double first_attempt_success = 0.8;

  // True when the `attempt`-th (1-based) repair attempt succeeds. Every
  // attempt after the first succeeds, matching the paper's two-or-four
  // day model.
  [[nodiscard]] bool attempt_succeeds(int attempt, common::Rng& rng) const {
    return attempt >= 2 || rng.bernoulli(first_attempt_success);
  }
};

inline constexpr double kLegacyFirstAttemptSuccess = 0.5;
inline constexpr double kCorrOptFirstAttemptSuccess = 0.8;

// The concrete-action technician.
class Technician {
 public:
  // `p_follow`: probability of following a present recommendation.
  explicit Technician(double p_follow = 1.0) : p_follow_(p_follow) {}

  // On-site visual inspection (Section 5.2): before acting, technicians
  // look for tight bends, damage, and loosely seated equipment. Visually
  // apparent root causes are sometimes spotted and fixed directly,
  // regardless of any recommendation. Returns the action taken when the
  // inspection finds the cause.
  struct VisualInspection {
    // Chance of spotting a bent/damaged fiber on sight.
    double p_spot_damage = 0.6;
    // Chance of noticing a loosely seated transceiver.
    double p_spot_loose = 0.5;
  };

  // Performs the inspection against the ground-truth root cause; returns
  // the corrective action when the cause was spotted, nullopt otherwise.
  [[nodiscard]] std::optional<faults::RepairAction> inspect(
      faults::RootCause true_cause, common::Rng& rng) const;

  void set_visual_inspection(const VisualInspection& params) {
    visual_ = params;
  }

  // The legacy escalation sequence: visually inspect and clean first,
  // then reseat, then replace the transceiver, then the cable, then
  // escalate to the far-end transceiver and shared components.
  [[nodiscard]] static faults::RepairAction legacy_action(int attempt);

  // Chooses the action for the given attempt. A missing recommendation
  // always falls back to the legacy sequence.
  [[nodiscard]] faults::RepairAction choose_action(
      const std::optional<faults::RepairAction>& recommendation, int attempt,
      common::Rng& rng) const;

  [[nodiscard]] double p_follow() const { return p_follow_; }

 private:
  double p_follow_;
  VisualInspection visual_;
};

}  // namespace corropt::repair
