#include "repair/technician.h"

#include <array>

namespace corropt::repair {

faults::RepairAction Technician::legacy_action(int attempt) {
  static constexpr std::array<faults::RepairAction, 6> kSequence = {
      faults::RepairAction::kCleanFiber,
      faults::RepairAction::kReseatTransceiver,
      faults::RepairAction::kReplaceTransceiver,
      faults::RepairAction::kReplaceFiber,
      faults::RepairAction::kReplaceRemoteTransceiver,
      faults::RepairAction::kReplaceSharedComponent,
  };
  const int index = attempt < 1 ? 0 : (attempt - 1) % kSequence.size();
  return kSequence[static_cast<std::size_t>(index)];
}

std::optional<faults::RepairAction> Technician::inspect(
    faults::RootCause true_cause, common::Rng& rng) const {
  switch (true_cause) {
    case faults::RootCause::kDamagedFiber:
      if (rng.bernoulli(visual_.p_spot_damage)) {
        return faults::RepairAction::kReplaceFiber;
      }
      break;
    case faults::RootCause::kBadOrLooseTransceiver:
      if (rng.bernoulli(visual_.p_spot_loose)) {
        return faults::RepairAction::kReseatTransceiver;
      }
      break;
    default:
      // Contamination, decaying lasers and shared-component faults are
      // invisible to the naked eye.
      break;
  }
  return std::nullopt;
}

faults::RepairAction Technician::choose_action(
    const std::optional<faults::RepairAction>& recommendation, int attempt,
    common::Rng& rng) const {
  if (recommendation.has_value() && rng.bernoulli(p_follow_)) {
    return *recommendation;
  }
  return legacy_action(attempt);
}

}  // namespace corropt::repair
