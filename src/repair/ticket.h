// Maintenance tickets and the FIFO repair queue.
//
// Every disabled link gets a ticket; technicians work tickets in FIFO
// order. The paper's ticket analysis (Section 5.2) found an average of
// two days per ticket, and its simulations model each repair attempt as
// a flat two-day stay. The queue supports both that model (unlimited
// technicians, fixed service time) and a capacity-limited crew, where
// backlog stretches resolution times.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/snapshot.h"
#include "common/time.h"
#include "faults/repair_action.h"

namespace corropt::repair {

using common::LinkId;
using common::SimDuration;
using common::SimTime;
using common::TicketId;

struct Ticket {
  TicketId id;
  LinkId link;
  SimTime issued = 0;
  // Which repair attempt on this link this ticket represents (1-based).
  int attempt = 1;
  // CorrOpt's recommendation, when the engine produced one. Tickets
  // without optical data carry no recommendation (Section 7.2).
  std::optional<faults::RepairAction> recommendation;
  std::string rationale;
  // When a technician finishes acting on the ticket.
  SimTime scheduled_completion = 0;
};

struct TicketQueueParams {
  // 0 means an unbounded crew: every ticket completes issue time +
  // service_time later, the paper's simulation model.
  int technicians = 0;
  SimDuration service_time = common::kMeanRepairTime;
};

class TicketQueue {
 public:
  explicit TicketQueue(TicketQueueParams params = {});

  // Opens a ticket at `now`; computes and stores its completion time.
  TicketId open(LinkId link, SimTime now, int attempt,
                std::optional<faults::RepairAction> recommendation,
                std::string rationale = {});

  [[nodiscard]] const Ticket& ticket(TicketId id) const;
  // Removes a completed ticket from the open set.
  void close(TicketId id);

  [[nodiscard]] std::size_t open_count() const { return open_.size(); }
  [[nodiscard]] std::size_t total_issued() const { return next_id_; }

  // Checkpointing (DESIGN.md §14): open tickets (id order), the crew
  // schedule and the id counter. `params_` stays the restoring queue's
  // own configuration; when its crew size differs from the serialized
  // schedule (a counterfactual crew-capacity branch), the schedule is
  // reconciled: grown crews gain immediately-free technicians, shrunk
  // crews keep the busiest (latest-free) ones, so in-flight tickets
  // never lose their completion times.
  void snapshot_to(common::snap::Writer& w) const;
  void restore_from(common::snap::Reader& r);

 private:
  TicketQueueParams params_;
  std::unordered_map<TicketId, Ticket> open_;
  // With a bounded crew, the time each technician becomes free.
  std::vector<SimTime> crew_free_at_;
  TicketId::underlying_type next_id_ = 0;
};

}  // namespace corropt::repair
