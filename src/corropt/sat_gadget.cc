#include "corropt/sat_gadget.h"

#include <cassert>
#include <cmath>
#include <string>

namespace corropt::core {

bool solve_sat_brute_force(const SatInstance& instance) {
  assert(instance.num_vars <= 20);
  const std::uint32_t limit = 1u << instance.num_vars;
  for (std::uint32_t assignment = 0; assignment < limit; ++assignment) {
    bool all = true;
    for (const SatClause& clause : instance.clauses) {
      bool any = false;
      for (int literal : clause.literals) {
        const int var = std::abs(literal);
        const bool value = ((assignment >> (var - 1)) & 1u) != 0;
        if ((literal > 0) == value) {
          any = true;
          break;
        }
      }
      if (!any) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

SatGadget build_sat_gadget(const SatInstance& instance) {
  const int r = instance.num_vars;
  const int k = static_cast<int>(instance.clauses.size());
  assert(r >= 1);
  assert(k >= r && "the reduction assumes at least as many clauses as vars");

  // Connectivity only: every ToR must keep at least one path to the
  // spine. A tiny fractional constraint makes min_paths == 1 regardless
  // of the ToR's design path count.
  SatGadget gadget{topology::Topology{}, {}, CapacityConstraint(1e-9)};
  topology::Topology& topo = gadget.topo;

  // Aggregation switches: X_v and notX_v for each variable.
  std::vector<common::SwitchId> literal_agg(
      static_cast<std::size_t>(2 * r));
  for (int v = 1; v <= r; ++v) {
    literal_agg[static_cast<std::size_t>(2 * (v - 1))] =
        topo.add_switch(1, "X" + std::to_string(v));
    literal_agg[static_cast<std::size_t>(2 * (v - 1) + 1)] =
        topo.add_switch(1, "notX" + std::to_string(v));
  }

  // Clause ToRs: C_i links to the aggs of its three literals.
  for (int i = 0; i < k; ++i) {
    const common::SwitchId clause_tor =
        topo.add_switch(0, "C" + std::to_string(i + 1));
    for (int literal : instance.clauses[static_cast<std::size_t>(i)].literals) {
      const int var = std::abs(literal);
      assert(var >= 1 && var <= r);
      const std::size_t index =
          static_cast<std::size_t>(2 * (var - 1) + (literal < 0 ? 1 : 0));
      topo.add_link(clause_tor, literal_agg[index]);
    }
  }

  // Helper ToRs: H_1..H_r tie X_j to notX_j; H_{r+1}..H_k tie X_1 pair.
  for (int j = 1; j <= k; ++j) {
    const common::SwitchId helper =
        topo.add_switch(0, "H" + std::to_string(j));
    const int var = j <= r ? j : 1;
    topo.add_link(helper, literal_agg[static_cast<std::size_t>(2 * (var - 1))]);
    topo.add_link(helper,
                  literal_agg[static_cast<std::size_t>(2 * (var - 1) + 1)]);
  }

  // Spine: one switch per literal agg; the single uplink is the
  // corrupting link of that literal (the set L of Lemma A.1).
  gadget.corrupting.reserve(static_cast<std::size_t>(2 * r));
  for (int index = 0; index < 2 * r; ++index) {
    const common::SwitchId spine =
        topo.add_switch(2, "S" + std::to_string(index));
    gadget.corrupting.push_back(
        topo.add_link(literal_agg[static_cast<std::size_t>(index)], spine));
  }

  topo.validate();
  return gadget;
}

}  // namespace corropt::core
