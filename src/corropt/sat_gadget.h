// The Appendix A NP-hardness construction.
//
// Theorem 5.1 reduces 3-SAT to the link-disabling problem: in one pod of
// a fat-tree, clause ToRs connect to the aggregation switches of their
// literals, helper ToRs tie each variable's literal pair together, and
// every literal's single aggregation-to-spine link is corrupting. A set
// of r corrupting links (one per variable) can be disabled while keeping
// every ToR connected to the spine iff the formula is satisfiable. This
// module materializes that gadget so the optimizer can be exercised as a
// (deliberately slow) SAT solver in tests and the hardness bench.
#pragma once

#include <array>
#include <vector>

#include "common/ids.h"
#include "corropt/capacity.h"
#include "topology/topology.h"

namespace corropt::core {

struct SatClause {
  // Literals as +v (variable v true) or -v (false); 1-based variables.
  std::array<int, 3> literals;
};

struct SatInstance {
  int num_vars = 0;
  std::vector<SatClause> clauses;
};

// Exhaustive satisfiability check; 2^num_vars, tests only.
[[nodiscard]] bool solve_sat_brute_force(const SatInstance& instance);

struct SatGadget {
  topology::Topology topo;
  // The corrupting link of each literal: index 2*(v-1) for +v and
  // 2*(v-1)+1 for -v.
  std::vector<common::LinkId> corrupting;
  // A constraint requiring every ToR to keep at least one spine path
  // (the connectivity requirement of Lemma A.1).
  CapacityConstraint connectivity;

  [[nodiscard]] common::LinkId literal_link(int var, bool negated) const {
    return corrupting[static_cast<std::size_t>(2 * (var - 1) +
                                               (negated ? 1 : 0))];
  }
};

// Builds the Lemma A.1 gadget for an instance with k >= r (clauses at
// least as numerous as variables, as the reduction assumes).
[[nodiscard]] SatGadget build_sat_gadget(const SatInstance& instance);

}  // namespace corropt::core
