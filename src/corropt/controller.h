// The CorrOpt controller: the workflow of Figure 13.
//
// Switches report packet corruption to the controller; the controller
// decides (fast checker) whether the corrupting link can be safely
// disabled, and if so disables it and issues a maintenance ticket. When a
// repaired link is activated, the controller runs the optimizer to disable
// any remaining corrupting links that newly-freed capacity permits. The
// controller is also configurable to emulate the state-of-the-art
// switch-local checker and the fast-checker-only ablation, which the
// paper compares against (Figures 14-18).
#pragma once

#include <deque>
#include <functional>
#include <span>
#include <vector>

#include "common/ids.h"
#include "corropt/capacity.h"
#include "corropt/corruption_set.h"
#include "corropt/fast_checker.h"
#include "corropt/optimizer.h"
#include "corropt/penalty.h"
#include "corropt/switch_local.h"
#include "obs/sink.h"
#include "topology/topology.h"

namespace corropt::core {

enum class CheckerMode {
  // Production state of the art: per-switch uplink budget with
  // sc = c^(1/r).
  kSwitchLocal,
  // CorrOpt's fast checker run on both arrival and activation events.
  kFastCheckerOnly,
  // Full CorrOpt: fast checker on arrival, optimizer on activation.
  kCorrOpt,
};

struct ControllerConfig {
  CheckerMode mode = CheckerMode::kCorrOpt;
  // Uniform per-ToR capacity constraint; per-ToR overrides can be set on
  // the constraint after construction via mutable_constraint().
  double capacity_fraction = 0.75;
  OptimizerConfig optimizer;

  // Section 8 extension: account for the collateral impact of repair.
  // Repairing one leg of a breakout bundle takes the healthy sibling
  // links out of service during maintenance; with this set, the fast
  // checker only disables a link if capacity holds even with its whole
  // breakout bundle off. (The switch-local baseline has no equivalent.)
  bool account_collateral_repair = false;

  // Incremental control loop (DESIGN.md §12): keep the optimizer's and
  // fast checker's derived state (path counts, closures, segment
  // solutions) alive across events, invalidating only what each change
  // touches. Decisions — disable sets, enabled mask, penalties, tickets,
  // journal decision events — are identical to the default cold path;
  // only search-effort diagnostics (kOptimizerRun.detail1, the
  // optimizer.subsets_evaluated / cache-skip counters, and
  // fastcheck.cache_refreshes / delta_updates) may differ.
  bool incremental = false;
  // Debug mode: after every optimizer run, replay the event cold on a
  // topology copy and throw std::logic_error if the disable set, the
  // penalties, or the resulting enabled mask diverge. Expensive; for
  // tests and the CI bench smoke only.
  bool verify_incremental = false;
};

class Controller {
 public:
  // Invoked for every link the controller disables; the receiver is
  // expected to open a maintenance ticket.
  using TicketCallback = std::function<void(common::LinkId)>;

  Controller(topology::Topology& topo, ControllerConfig config,
             PenaltyFunction penalty = PenaltyFunction::linear());

  void set_ticket_callback(TicketCallback callback) {
    ticket_callback_ = std::move(callback);
  }

  [[nodiscard]] CapacityConstraint& mutable_constraint() {
    return constraint_;
  }

  // A switch reported corruption on `link` at the given link-level loss
  // rate. Returns true when the controller disabled the link.
  bool on_corruption_detected(common::LinkId link, double loss_rate);

  // A repair eliminated corruption on `link`: the controller re-enables
  // it and re-examines the remaining corrupting links (optimizer in
  // CorrOpt mode; re-running the respective checker otherwise).
  void on_link_repaired(common::LinkId link);

  // Monitoring downgraded its estimate: the link is no longer corrupting
  // (e.g. rate fell below threshold) without a repair event.
  void on_corruption_cleared(common::LinkId link);

  [[nodiscard]] const CorruptionSet& corruption() const {
    return corruption_;
  }
  // Penalty per unit time of corrupting links still carrying traffic.
  [[nodiscard]] double active_penalty() const {
    return corruption_.total_active_penalty(*topo_, penalty_);
  }
  [[nodiscard]] const topology::Topology& topo() const { return *topo_; }
  [[nodiscard]] CheckerMode mode() const { return config_.mode; }

  // Diagnostics accumulated since construction.
  struct Stats {
    std::size_t corruption_reports = 0;
    std::size_t disabled_on_arrival = 0;
    std::size_t disabled_on_activation = 0;
    std::size_t tickets_issued = 0;
    std::size_t optimizer_runs = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }
  // Read access to the optimizer (e.g. incremental_stats() in tests).
  [[nodiscard]] const Optimizer& optimizer() const { return optimizer_; }

  // Structured audit trail of controller decisions, for operator
  // tooling and post-incident review. Off by default; bounded to the
  // most recent `capacity` records once enabled.
  struct ActionRecord {
    enum class Kind {
      kDisabled,        // Link taken out of service.
      kRefusedCapacity, // Corruption kept active: constraint would break.
      kEnabled,         // Link returned to service after repair.
      kTicketIssued,
      kOptimizerRun,    // detail = links disabled by the run.
      kCorruptionCleared,
    };
    Kind kind = Kind::kDisabled;
    common::LinkId link;  // Invalid for kOptimizerRun.
    double loss_rate = 0.0;
    std::size_t detail = 0;
  };
  void enable_audit_log(std::size_t capacity = 4096);
  [[nodiscard]] const std::deque<ActionRecord>& audit_log() const {
    return audit_log_;
  }

  // Attaches observability (DESIGN.md §8): decision counters and journal
  // events for every verdict, forwarded to the fast checker and
  // optimizer as well. The sink is write-only — attaching it never
  // changes a decision. Pass nullptr to detach.
  void set_sink(obs::Sink* sink);

  // Checkpointing (DESIGN.md §14): stats, the corruption set, the fast
  // checker's path-count cache, and the audit trail. The optimizer's
  // derived state (baseline counts, incremental caches) is not
  // serialized — it is version-keyed against the topology and
  // re-derives deterministically, producing identical decisions either
  // way. Config, constraint and callback belong to the restoring
  // context and are untouched.
  void snapshot_to(common::snap::Writer& w) const;
  void restore_from(common::snap::Reader& r);

 private:
  // Re-examines all active corrupting links with the mode's arrival
  // checker (switch-local and fast-checker-only modes).
  void recheck_all_active();
  void issue_ticket(common::LinkId link);
  bool arrival_disable(common::LinkId link);
  // Reports an enabled-state change to the incremental caches (no-op
  // unless config_.incremental). Must be called after every effective
  // set_enabled on topo_ outside the optimizer's own run.
  void note_state_changed(std::span<const common::LinkId> links);
  void audit(ActionRecord record);
  // Journals a link-scoped event with the link's lower switch filled in.
  void emit_link(obs::EventKind kind, obs::EventReason reason,
                 common::LinkId link, double value);

  topology::Topology* topo_;
  ControllerConfig config_;
  PenaltyFunction penalty_;
  CapacityConstraint constraint_;
  FastChecker fast_checker_;
  SwitchLocalChecker switch_local_;
  Optimizer optimizer_;
  CorruptionSet corruption_;
  TicketCallback ticket_callback_;
  Stats stats_;
  bool audit_enabled_ = false;
  std::size_t audit_capacity_ = 0;
  std::deque<ActionRecord> audit_log_;

  // Observability (all inert when sink_ is null).
  obs::Sink* sink_ = nullptr;
  obs::Counter obs_reports_;
  obs::Counter obs_disabled_arrival_;
  obs::Counter obs_disabled_activation_;
  obs::Counter obs_refused_capacity_;
  obs::Counter obs_tickets_;
  obs::Counter obs_optimizer_runs_;
};

}  // namespace corropt::core
