#include "corropt/controller.h"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "common/logging.h"

namespace corropt::core {

Controller::Controller(topology::Topology& topo, ControllerConfig config,
                       PenaltyFunction penalty)
    : topo_(&topo),
      config_(config),
      penalty_(penalty),
      constraint_(config.capacity_fraction),
      fast_checker_(topo, constraint_),
      switch_local_(topo, switch_local_threshold(config.capacity_fraction,
                                                 std::max(1, topo.top_level()))),
      optimizer_(topo, constraint_, penalty, config.optimizer) {
  if (config_.incremental) {
    optimizer_.set_incremental(true);
    fast_checker_.set_incremental(true);
  }
}

void Controller::note_state_changed(
    std::span<const common::LinkId> links) {
  if (!config_.incremental) return;
  optimizer_.note_links_changed(links);
  fast_checker_.note_links_changed(links);
}

void Controller::enable_audit_log(std::size_t capacity) {
  audit_enabled_ = true;
  audit_capacity_ = capacity;
}

void Controller::set_sink(obs::Sink* sink) {
  sink_ = sink;
  fast_checker_.set_sink(sink);
  optimizer_.set_sink(sink);
  if (sink == nullptr || sink->metrics == nullptr) {
    obs_reports_ = obs::Counter();
    obs_disabled_arrival_ = obs::Counter();
    obs_disabled_activation_ = obs::Counter();
    obs_refused_capacity_ = obs::Counter();
    obs_tickets_ = obs::Counter();
    obs_optimizer_runs_ = obs::Counter();
    return;
  }
  obs::MetricsRegistry& metrics = *sink->metrics;
  obs_reports_ = metrics.counter("controller.corruption_reports");
  obs_disabled_arrival_ = metrics.counter("controller.disabled_on_arrival");
  obs_disabled_activation_ =
      metrics.counter("controller.disabled_on_activation");
  obs_refused_capacity_ = metrics.counter("controller.refused_capacity");
  obs_tickets_ = metrics.counter("controller.tickets_issued");
  obs_optimizer_runs_ = metrics.counter("controller.optimizer_runs");
}

void Controller::emit_link(obs::EventKind kind, obs::EventReason reason,
                           common::LinkId link, double value) {
  if (sink_ == nullptr) return;
  obs::Event event;
  event.kind = kind;
  event.reason = reason;
  event.link = link;
  event.sw = topo_->link_at(link).lower;
  event.value = value;
  sink_->emit(event);
}

void Controller::audit(ActionRecord record) {
  if (!audit_enabled_) return;
  if (audit_log_.size() >= audit_capacity_) audit_log_.pop_front();
  audit_log_.push_back(record);
}

void Controller::issue_ticket(common::LinkId link) {
  ++stats_.tickets_issued;
  obs_tickets_.add();
  audit({ActionRecord::Kind::kTicketIssued, link, corruption_.rate(link), 0});
  if (ticket_callback_) ticket_callback_(link);
}

bool Controller::arrival_disable(common::LinkId link) {
  switch (config_.mode) {
    case CheckerMode::kSwitchLocal:
      if (switch_local_.try_disable(link)) {
        note_state_changed({&link, 1});
        return true;
      }
      return false;
    case CheckerMode::kFastCheckerOnly:
    case CheckerMode::kCorrOpt: {
      if (config_.account_collateral_repair) {
        // Conservative: capacity must hold even while the link's healthy
        // breakout siblings are down for the repair.
        std::vector<common::LinkId> peers = topo_->breakout_peers(link);
        peers.erase(std::remove(peers.begin(), peers.end(), link),
                    peers.end());
        if (!topo_->is_enabled(link) ||
            !fast_checker_.can_disable(link, peers)) {
          return topo_->is_enabled(link) ? false : true;
        }
        topo_->set_enabled(link, false);
        note_state_changed({&link, 1});
        return true;
      }
      if (fast_checker_.try_disable(link)) {
        // The fast checker's own cache self-maintained; the note reaches
        // the optimizer's pending list.
        note_state_changed({&link, 1});
        return true;
      }
      return false;
    }
  }
  return false;
}

bool Controller::on_corruption_detected(common::LinkId link,
                                        double loss_rate) {
  ++stats_.corruption_reports;
  obs_reports_.add();
  corruption_.mark(link, loss_rate);
  emit_link(obs::EventKind::kCorruptionDetected, obs::EventReason::kNone,
            link, loss_rate);
  if (!topo_->is_enabled(link)) {  // Already off (e.g. peer).
    emit_link(obs::EventKind::kFastCheckVerdict,
              obs::EventReason::kAlreadyDisabled, link, loss_rate);
    return false;
  }
  if (arrival_disable(link)) {
    ++stats_.disabled_on_arrival;
    obs_disabled_arrival_.add();
    CORROPT_LOG_INFO << "controller: disabled corrupting link "
                     << link.value() << " (loss rate " << loss_rate << ")";
    audit({ActionRecord::Kind::kDisabled, link, loss_rate, 0});
    emit_link(obs::EventKind::kFastCheckVerdict,
              obs::EventReason::kDisabledVerdict, link, loss_rate);
    emit_link(obs::EventKind::kLinkDisabled, obs::EventReason::kArrival,
              link, loss_rate);
    issue_ticket(link);
    return true;
  }
  CORROPT_LOG_INFO << "controller: corrupting link " << link.value()
                   << " kept active: capacity constraint would be violated";
  audit({ActionRecord::Kind::kRefusedCapacity, link, loss_rate, 0});
  obs_refused_capacity_.add();
  emit_link(obs::EventKind::kFastCheckVerdict,
            obs::EventReason::kRefusedCapacity, link, loss_rate);
  return false;
}

void Controller::recheck_all_active() {
  // Re-examine active corrupting links in detection order, mirroring the
  // production systems the paper describes: the recheck is a plain
  // re-run over the waiting list, with no awareness of loss rates. The
  // optimizer's penalty-aware subset selection is exactly what this
  // baseline lacks (Figure 18).
  const std::vector<common::LinkId> active =
      corruption_.active_in_detection_order(*topo_);
  for (common::LinkId link : active) {
    if (arrival_disable(link)) {
      ++stats_.disabled_on_activation;
      obs_disabled_activation_.add();
      audit({ActionRecord::Kind::kDisabled, link, corruption_.rate(link), 0});
      emit_link(obs::EventKind::kLinkDisabled, obs::EventReason::kActivation,
                link, corruption_.rate(link));
      issue_ticket(link);
    }
  }
}

void Controller::on_link_repaired(common::LinkId link) {
  corruption_.unmark(link);
  topo_->set_enabled(link, true);
  note_state_changed({&link, 1});
  audit({ActionRecord::Kind::kEnabled, link, 0.0, 0});
  emit_link(obs::EventKind::kLinkEnabled, obs::EventReason::kNone, link, 0.0);
  switch (config_.mode) {
    case CheckerMode::kSwitchLocal:
    case CheckerMode::kFastCheckerOnly:
      recheck_all_active();
      break;
    case CheckerMode::kCorrOpt: {
      ++stats_.optimizer_runs;
      obs_optimizer_runs_.add();
      // Debug equivalence check: snapshot the pre-run state so the same
      // event can be replayed from scratch below.
      std::unique_ptr<topology::Topology> cold_topo;
      if (config_.verify_incremental) {
        cold_topo = std::make_unique<topology::Topology>(*topo_);
      }
      const OptimizerResult result = optimizer_.run(corruption_);
      if (cold_topo != nullptr) {
        Optimizer cold(*cold_topo, constraint_, penalty_, config_.optimizer);
        const OptimizerResult cold_result = cold.run(corruption_);
        if (cold_result.disabled != result.disabled ||
            cold_result.disabled_penalty != result.disabled_penalty ||
            cold_result.remaining_penalty != result.remaining_penalty ||
            !(cold_topo->enabled_mask() == topo_->enabled_mask())) {
          throw std::logic_error(
              "controller: incremental optimizer diverged from cold solve");
        }
      }
      // The optimizer already noted its own disables internally; this
      // reaches the fast checker's cached counts.
      note_state_changed(result.disabled);
      stats_.disabled_on_activation += result.disabled.size();
      obs_disabled_activation_.add(result.disabled.size());
      audit({ActionRecord::Kind::kOptimizerRun, common::LinkId(), 0.0,
             result.disabled.size()});
      if (sink_ != nullptr) {
        obs::Event event;
        event.kind = obs::EventKind::kOptimizerRun;
        event.value = result.disabled_penalty;
        event.value2 = result.remaining_penalty;
        event.detail0 = result.disabled.size();
        event.detail1 = result.subsets_evaluated;
        sink_->emit(event);
      }
      for (common::LinkId disabled : result.disabled) {
        audit({ActionRecord::Kind::kDisabled, disabled,
               corruption_.rate(disabled), 0});
        emit_link(obs::EventKind::kLinkDisabled,
                  obs::EventReason::kActivation, disabled,
                  corruption_.rate(disabled));
        issue_ticket(disabled);
      }
      break;
    }
  }
}

void Controller::on_corruption_cleared(common::LinkId link) {
  audit({ActionRecord::Kind::kCorruptionCleared, link,
         corruption_.rate(link), 0});
  emit_link(obs::EventKind::kCorruptionCleared, obs::EventReason::kNone, link,
            corruption_.rate(link));
  corruption_.unmark(link);
}

void Controller::snapshot_to(common::snap::Writer& w) const {
  w.section(common::snap::tag('C', 'T', 'R', 'L'), 1);
  w.u64(stats_.corruption_reports);
  w.u64(stats_.disabled_on_arrival);
  w.u64(stats_.disabled_on_activation);
  w.u64(stats_.tickets_issued);
  w.u64(stats_.optimizer_runs);
  corruption_.snapshot_to(w);
  fast_checker_.snapshot_to(w);
  w.boolean(audit_enabled_);
  w.u64(audit_capacity_);
  w.u64(audit_log_.size());
  for (const ActionRecord& record : audit_log_) {
    w.u8(static_cast<std::uint8_t>(record.kind));
    w.u32(record.link.value());
    w.f64(record.loss_rate);
    w.u64(record.detail);
  }
}

void Controller::restore_from(common::snap::Reader& r) {
  r.expect_section(common::snap::tag('C', 'T', 'R', 'L'));
  stats_.corruption_reports = r.u64();
  stats_.disabled_on_arrival = r.u64();
  stats_.disabled_on_activation = r.u64();
  stats_.tickets_issued = r.u64();
  stats_.optimizer_runs = r.u64();
  corruption_.restore_from(r);
  fast_checker_.restore_from(r);
  audit_enabled_ = r.boolean();
  audit_capacity_ = r.u64();
  audit_log_.clear();
  const std::uint64_t records = r.u64();
  for (std::uint64_t i = 0; i < records; ++i) {
    ActionRecord record;
    record.kind = static_cast<ActionRecord::Kind>(r.u8());
    record.link = common::LinkId(r.u32());
    record.loss_rate = r.f64();
    record.detail = r.u64();
    audit_log_.push_back(record);
  }
  // The optimizer's derived caches are keyed by the topology's state
  // version; a restore can rewind the counter to a value already seen
  // with a different enabled mask, so a stale hit here would corrupt the
  // next run. Dropping them is free of observable effects: re-derivation
  // is deterministic and touches no metrics.
  optimizer_.drop_derived_state();
}

}  // namespace corropt::core
