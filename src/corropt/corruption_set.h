// Registry of links currently corrupting packets.
//
// The controller marks a link here when the monitoring pipeline reports a
// corruption loss rate above the lossy threshold (the paper conservatively
// uses 1e-8, per the IEEE 802.3 requirement) and unmarks it when a repair
// eliminates the corruption. Checkers and the optimizer read this set to
// know which enabled links still incur penalty and which disabled links
// await repair.
#pragma once

#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/snapshot.h"
#include "corropt/penalty.h"
#include "topology/topology.h"

namespace corropt::core {

using common::LinkId;

// The IEEE 802.3 corruption threshold the paper adopts for deeming a link
// lossy (Section 3, footnote 2).
inline constexpr double kLossyThreshold = 1e-8;

class CorruptionSet {
 public:
  struct Entry {
    double rate = 0.0;
    // Monotonic detection sequence number: lower = detected earlier.
    // Re-marking an already-known link updates the rate but keeps the
    // original detection position.
    std::uint64_t detected_seq = 0;
  };

  // Marks a link as corrupting with the given link-level loss rate
  // (the worse direction); updates the rate if already marked.
  void mark(LinkId link, double loss_rate);
  void unmark(LinkId link);

  // Bumped on every mark/unmark; together with Topology::state_version()
  // it keys the total_active_penalty cache below.
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }

  [[nodiscard]] bool contains(LinkId link) const {
    return entries_.contains(link);
  }
  // Loss rate of a marked link; 0 for unmarked links.
  [[nodiscard]] double rate(LinkId link) const;
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  [[nodiscard]] const std::unordered_map<LinkId, Entry>& entries() const {
    return entries_;
  }

  // All marked links (enabled or not) in increasing link-id order. Use
  // this instead of iterating entries() wherever the visit order can
  // reach an observable result (floating-point sums, suspect sets):
  // hash-map order is a function of the map's insert/erase *history*,
  // which a checkpoint restore cannot (and should not) reproduce.
  [[nodiscard]] std::vector<LinkId> links_sorted() const;

  // Corrupting links that are still enabled (and hence incur penalty),
  // in increasing link-id order.
  [[nodiscard]] std::vector<LinkId> active(
      const topology::Topology& topo) const;

  // Same set, ordered by detection time (the naive re-check order of the
  // production system the paper describes).
  [[nodiscard]] std::vector<LinkId> active_in_detection_order(
      const topology::Topology& topo) const;

  // Total penalty per unit time of active corrupting links:
  // sum of I(f_l) over enabled corrupting links. O(1) while neither the
  // set (epoch) nor the topology's link state (state_version) changed
  // since the last call with the same topology and penalty function; the
  // entries_ rescan only runs when one of those keys moved.
  [[nodiscard]] double total_active_penalty(
      const topology::Topology& topo, const PenaltyFunction& penalty) const;

  // Checkpointing (DESIGN.md §14): entries in link-id order plus the
  // sequence and epoch counters. Restore drops the memoized penalty
  // cache — it holds a raw Topology pointer from the *source* context,
  // which must never leak into a branch (see the regression test).
  void snapshot_to(common::snap::Writer& w) const;
  void restore_from(common::snap::Reader& r);

 private:
  std::unordered_map<LinkId, Entry> entries_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t epoch_ = 0;

  // Memoized total_active_penalty result and the keys it was computed
  // under. Written only from the (single-threaded) control loop; the
  // parallel segment solvers never call total_active_penalty.
  struct PenaltyCache {
    bool valid = false;
    const topology::Topology* topo = nullptr;
    std::uint64_t topo_version = 0;
    std::uint64_t epoch = 0;
    PenaltyFunction penalty = PenaltyFunction::linear();
    double value = 0.0;
  };
  mutable PenaltyCache penalty_cache_;
};

}  // namespace corropt::core
