// CorrOpt's repair recommendation engine (Section 5.2, Algorithm 1).
//
// Given a corrupting link, the engine proposes the single repair action
// most likely to eliminate the corruption, derived from the root-cause
// symptom analysis of Section 4: co-located corruption implicates a
// shared component; bidirectional corruption implicates the cable; low
// far-end TxPower implicates a decaying transmitter; low RxPower on both
// ends implicates the fiber; low RxPower on one end implicates a dirty
// connector; healthy optics implicate the transceiver, reseated first and
// replaced on a repeat offence.
#pragma once

#include <string>

#include "common/ids.h"
#include "faults/repair_action.h"
#include "telemetry/network_state.h"

namespace corropt::core {

using common::DirectionId;
using common::LinkId;

struct Recommendation {
  faults::RepairAction action = faults::RepairAction::kCleanFiber;
  // Human-readable explanation for the ticket body.
  std::string rationale;
};

class RecommendationEngine {
 public:
  // `corruption_threshold` is the loss rate above which a link counts as
  // corrupting when checking neighbours and the opposite direction.
  explicit RecommendationEngine(const telemetry::NetworkState& state,
                                double corruption_threshold = kLossyThresh);

  // Algorithm 1. `corrupting_dir` is the direction on which corruption is
  // observed (the receiver side drops the frames). `recently_reseated`
  // reflects the link's repair history: a transceiver that was already
  // reseated without eliminating corruption gets replaced instead.
  [[nodiscard]] Recommendation recommend(DirectionId corrupting_dir,
                                         bool recently_reseated) const;

  // Link-level convenience: recommends for the worse corrupting
  // direction.
  [[nodiscard]] Recommendation recommend_link(LinkId link,
                                              bool recently_reseated) const;

 private:
  static constexpr double kLossyThresh = 1e-8;

  // Any other link on either endpoint switch corrupting?
  [[nodiscard]] bool neighbors_corrupting(LinkId link) const;

  const telemetry::NetworkState* state_;
  double threshold_;
};

}  // namespace corropt::core
