#include "corropt/fast_checker.h"

#include <algorithm>

namespace corropt::core {

FastChecker::FastChecker(topology::Topology& topo,
                         const CapacityConstraint& constraint)
    : topo_(&topo), constraint_(&constraint), paths_(topo) {
  in_closure_.assign(topo.switch_count(), 0);
  slot_.assign(topo.switch_count(), -1);
}

void FastChecker::set_sink(obs::Sink* sink) {
  sink_ = sink;
  if (sink == nullptr || sink->metrics == nullptr) {
    obs_checks_ = obs::Counter();
    obs_disables_ = obs::Counter();
    obs_cache_refreshes_ = obs::Counter();
    obs_delta_updates_ = obs::Counter();
    obs_closure_switches_ = obs::Counter();
    obs_check_timer_ = obs::Histogram();
    return;
  }
  obs::MetricsRegistry& metrics = *sink->metrics;
  obs_checks_ = metrics.counter("fastcheck.checks");
  obs_disables_ = metrics.counter("fastcheck.disables");
  obs_cache_refreshes_ = metrics.counter("fastcheck.cache_refreshes");
  // Registered only in incremental mode: the default path must leave the
  // metrics registry (and thus the golden digests) untouched.
  obs_delta_updates_ = incremental_ ? metrics.counter("fastcheck.delta_updates")
                                    : obs::Counter();
  obs_closure_switches_ = metrics.counter("fastcheck.closure_switches");
  obs_check_timer_ = metrics.timer("fastcheck.check_s");
}

void FastChecker::note_links_changed(
    std::span<const common::LinkId> links) {
  if (!incremental_ || !cache_valid_) return;
  const std::uint64_t version = topo_->state_version();
  if (cached_version_ == version) return;
  // Each effective enabled-state change bumps the version by one; a gap
  // this note cannot account for means an unnoted change slipped in, so
  // the delta fold would miss links. Drop the cache and resweep lazily.
  if (version - cached_version_ > links.size()) {
    cache_valid_ = false;
    return;
  }
  paths_.refresh_counts_after_changes(cached_counts_, links, nullptr,
                                      note_scratch_);
  cached_version_ = version;
  obs_delta_updates_.add();
}

void FastChecker::refresh_cache() {
  if (cache_valid_ && cached_version_ == topo_->state_version()) return;
  cached_counts_ = paths_.up_paths();
  cached_version_ = topo_->state_version();
  cache_valid_ = true;
  obs_cache_refreshes_.add();
}

FastChecker::ClosureResult FastChecker::evaluate_closure(
    common::LinkId link) {
  // Downward closure of the link's lower endpoint: exactly the switches
  // whose up-path counts the removal can change.
  closure_.clear();
  const common::SwitchId root = topo_->link_at(link).lower;
  closure_.push_back(root);
  in_closure_[root.index()] = 1;
  for (std::size_t i = 0; i < closure_.size(); ++i) {
    for (common::LinkId downlink : topo_->switch_at(closure_[i]).downlinks) {
      if (!topo_->is_enabled(downlink)) continue;
      const common::SwitchId lower = topo_->link_at(downlink).lower;
      if (in_closure_[lower.index()] == 0) {
        in_closure_[lower.index()] = 1;
        closure_.push_back(lower);
      }
    }
  }
  // BFS discovery order is not level order; sort by level descending so
  // every switch is recomputed after the uppers it reads from.
  std::sort(closure_.begin(), closure_.end(),
            [this](common::SwitchId a, common::SwitchId b) {
              return topo_->switch_at(a).level > topo_->switch_at(b).level;
            });

  ClosureResult result;
  result.updates.reserve(closure_.size());
  // New counts for closure members (dense slots); switches outside the
  // closure read from the cache — their counts cannot change.
  std::vector<std::uint64_t> new_counts(closure_.size(), 0);
  for (std::size_t i = 0; i < closure_.size(); ++i) {
    slot_[closure_[i].index()] = static_cast<std::int32_t>(i);
  }

  for (std::size_t i = 0; i < closure_.size(); ++i) {
    const topology::Switch& sw = topo_->switch_at(closure_[i]);
    std::uint64_t total = 0;
    for (common::LinkId uplink : sw.uplinks) {
      if (uplink == link || !topo_->is_enabled(uplink)) continue;
      const common::SwitchId upper = topo_->link_at(uplink).upper;
      const std::int32_t upper_slot = slot_[upper.index()];
      total += upper_slot >= 0
                   ? new_counts[static_cast<std::size_t>(upper_slot)]
                   : cached_counts_[upper.index()];
    }
    new_counts[i] = total;
    result.updates.emplace_back(closure_[i], total);
    if (sw.level == 0 &&
        constraint_->below_min(sw.id, paths_.design_paths()[sw.id.index()],
                               total)) {
      result.feasible = false;
    }
  }

  // Clear scratch flags.
  for (common::SwitchId id : closure_) {
    in_closure_[id.index()] = 0;
    slot_[id.index()] = -1;
  }
  return result;
}

bool FastChecker::can_disable(common::LinkId link) {
  if (!topo_->is_enabled(link)) return true;
  const obs::ScopedTimer timer(obs_check_timer_,
                               sink_ != nullptr ? sink_->trace : nullptr,
                               "fastcheck.can_disable");
  refresh_cache();
  const ClosureResult result = evaluate_closure(link);
  obs_checks_.add();
  obs_closure_switches_.add(result.updates.size());
  return result.feasible;
}

bool FastChecker::can_disable(
    common::LinkId link, std::span<const common::LinkId> also_off) const {
  if (!topo_->is_enabled(link)) return true;
  LinkMask off(topo_->link_count());
  off.set(link.index());
  for (common::LinkId extra : also_off) off.set(extra.index());
  const std::vector<std::uint64_t> counts = paths_.up_paths(&off);
  return paths_.feasible(counts, *constraint_);
}

bool FastChecker::try_disable(common::LinkId link) {
  if (!topo_->is_enabled(link)) return true;
  const obs::ScopedTimer timer(obs_check_timer_,
                               sink_ != nullptr ? sink_->trace : nullptr,
                               "fastcheck.try_disable");
  refresh_cache();
  const ClosureResult result = evaluate_closure(link);
  obs_checks_.add();
  obs_closure_switches_.add(result.updates.size());
  if (!result.feasible) return false;
  obs_disables_.add();
  topo_->set_enabled(link, false);
  // Fold the closure's new counts into the cache so consecutive
  // decisions stay incremental.
  for (const auto& [sw, value] : result.updates) {
    cached_counts_[sw.index()] = value;
  }
  cached_version_ = topo_->state_version();
  return true;
}

void FastChecker::snapshot_to(common::snap::Writer& w) const {
  w.section(common::snap::tag('F', 'C', 'H', 'K'), 1);
  w.boolean(cache_valid_);
  w.u64(cached_version_);
  w.u64(cached_counts_.size());
  for (std::uint64_t count : cached_counts_) w.u64(count);
}

void FastChecker::restore_from(common::snap::Reader& r) {
  r.expect_section(common::snap::tag('F', 'C', 'H', 'K'));
  cache_valid_ = r.boolean();
  cached_version_ = r.u64();
  cached_counts_.resize(r.u64());
  for (std::uint64_t& count : cached_counts_) count = r.u64();
}

}  // namespace corropt::core
