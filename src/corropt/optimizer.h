// CorrOpt's global optimizer (Section 5.1).
//
// When a repaired link is re-enabled, capacity frees up and previously
// undisableable corrupting links may become disableable. The optimizer
// solves the underlying NP-complete problem (Theorem 5.1) exactly on
// practical instances via three reductions:
//
//   1. Pruning: treat all active corrupting links as disabled and find
//      the ToRs V whose constraints would be violated. Every corrupting
//      link not upstream of V is safe to disable outright (ToRs outside V
//      tolerate even the full set, and feasibility is monotone in the set
//      of enabled links).
//   2. Segmentation (Section 8): the remaining candidates split into
//      independent segments per the endangered ToRs they share.
//   3. Exact subset search per segment with a reject cache: subsets are
//      enumerated in increasing size; any superset of a known-infeasible
//      subset is skipped without evaluation.
//
// The result maximizes the total disabled penalty, i.e. minimizes the
// residual penalty sum over links of (1 - d_l) * I(f_l), subject to every
// ToR keeping its required fraction of valley-free paths to the spine.
#pragma once

#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "corropt/capacity.h"
#include "corropt/corruption_set.h"
#include "corropt/path_counter.h"
#include "corropt/penalty.h"
#include "corropt/segmentation.h"
#include "topology/topology.h"

namespace corropt::core {

struct OptimizerConfig {
  // Segments larger than this fall back to a greedy ordering (disable in
  // decreasing penalty while feasible); the result is then flagged
  // non-exact. Real traces never hit this in our experiments.
  std::size_t max_exact_segment = 22;
  bool use_reject_cache = true;
  bool use_pruning = true;
  bool use_segmentation = true;

  // Ablation switch for benchmarks: when false, singleton-infeasible
  // candidates are not pre-filtered before enumeration.
  bool prefilter_singletons = true;
};

struct OptimizerResult {
  // Links the optimizer disabled during this run.
  std::vector<LinkId> disabled;
  // Penalty of the links disabled by this run.
  double disabled_penalty = 0.0;
  // Penalty of corrupting links still enabled after this run.
  double remaining_penalty = 0.0;
  // False when any segment used the greedy fallback.
  bool exact = true;
  // Diagnostics.
  std::size_t pruned_safe_disables = 0;
  std::size_t segments = 0;
  std::size_t subsets_evaluated = 0;
  std::size_t cache_skips = 0;
};

class Optimizer {
 public:
  Optimizer(topology::Topology& topo, const CapacityConstraint& constraint,
            PenaltyFunction penalty, OptimizerConfig config = {});

  // Globally optimizes over the active corrupting links, disabling the
  // optimal subset. Call whenever a link is (re-)enabled.
  OptimizerResult run(const CorruptionSet& corruption);

 private:
  struct SegmentSolution {
    // selected[i] != 0 -> disable segment.links[i].
    std::vector<char> selected;
    double penalty = 0.0;
    bool exact = true;
  };

  // Exact (or greedy, over-budget) search within one segment. Updates
  // result diagnostics.
  SegmentSolution solve_segment(const Segment& segment,
                                const CorruptionSet& corruption,
                                OptimizerResult& result);

  // Feasibility of disabling the selected subset of segment.links for
  // the segment's ToRs, via a sweep restricted to the ToRs' upstream
  // closure.
  struct Region;
  [[nodiscard]] bool region_feasible(const Region& region,
                                     const Segment& segment,
                                     const std::vector<char>& selected);

  topology::Topology* topo_;
  const CapacityConstraint* constraint_;
  PenaltyFunction penalty_;
  OptimizerConfig config_;
  PathCounter paths_;
  // Scratch reused across feasibility sweeps.
  std::vector<std::uint64_t> scratch_paths_;
  std::vector<char> scratch_off_;
};

}  // namespace corropt::core
