// CorrOpt's global optimizer (Section 5.1).
//
// When a repaired link is re-enabled, capacity frees up and previously
// undisableable corrupting links may become disableable. The optimizer
// solves the underlying NP-complete problem (Theorem 5.1) exactly on
// practical instances via a stack of reductions:
//
//   1. Pruning: treat all active corrupting links as disabled and find
//      the ToRs V whose constraints would be violated. Every corrupting
//      link not upstream of V is safe to disable outright (ToRs outside V
//      tolerate even the full set, and feasibility is monotone in the set
//      of enabled links).
//   2. Segmentation (Section 8): the remaining candidates split into
//      independent segments per the endangered ToRs they share.
//   3. Branch-and-bound per segment: candidates are ordered by descending
//      penalty and searched depth-first, include-before-exclude, so the
//      most valuable subsets are reached first. A suffix-sum upper bound
//      prunes branches that cannot beat the incumbent; feasibility
//      monotonicity is exploited both ways through a reject cache (any
//      superset of a known-infeasible subset is infeasible) and an accept
//      cache (any subset of a known-feasible subset is feasible).
//      Feasibility sweeps are allocation-free and touch only the switches
//      whose path counts the segment's candidates can actually change —
//      everything else is folded into per-switch baseline constants.
//
// Independent segments can be solved concurrently (`solver_threads`):
// a candidate of one segment is never inside another segment's sweep
// region (it would have been merged by segmentation), so solving against
// the shared pre-segment topology state and applying the chosen disables
// serially afterward is bit-identical to the serial schedule.
//
// The result maximizes the total disabled penalty, i.e. minimizes the
// residual penalty sum over links of (1 - d_l) * I(f_l), subject to every
// ToR keeping its required fraction of valley-free paths to the spine.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/bitset.h"
#include "common/ids.h"
#include "obs/sink.h"
#include "corropt/capacity.h"
#include "corropt/corruption_set.h"
#include "corropt/path_counter.h"
#include "corropt/penalty.h"
#include "corropt/segmentation.h"
#include "topology/topology.h"

namespace corropt::core {

struct OptimizerConfig {
  // Segments larger than this fall back to a greedy ordering (disable in
  // decreasing penalty while feasible); the result is then flagged
  // non-exact. Real traces never hit this in our experiments.
  std::size_t max_exact_segment = 22;
  bool use_reject_cache = true;
  bool use_pruning = true;
  bool use_segmentation = true;

  // Accept cache: subsets of a mask already proven feasible are feasible
  // without a sweep (monotonicity in the other direction from the reject
  // cache). Ablation switch; exactness is unaffected.
  bool use_accept_cache = true;
  // Suffix-sum upper-bound cutoff: branches whose remaining candidates
  // cannot strictly beat the incumbent penalty are pruned. Ablation
  // switch; exactness is unaffected.
  bool use_bound = true;

  // Ablation switch for benchmarks: when false, singleton-infeasible
  // candidates are not pre-filtered before enumeration.
  bool prefilter_singletons = true;

  // Worker threads for solving independent segments concurrently; 1 (or
  // 0) solves serially. Results are bit-identical for any value.
  std::size_t solver_threads = 1;
};

struct OptimizerResult {
  // Links the optimizer disabled during this run.
  std::vector<LinkId> disabled;
  // Penalty of the links disabled by this run.
  double disabled_penalty = 0.0;
  // Penalty of corrupting links still enabled after this run.
  double remaining_penalty = 0.0;
  // False when any segment used the greedy fallback.
  bool exact = true;
  // Diagnostics.
  std::size_t pruned_safe_disables = 0;
  std::size_t segments = 0;
  // Subsets whose feasibility was established by an actual region sweep.
  std::size_t subsets_evaluated = 0;
  // Subsets (or whole subtrees, one count per pruning event) skipped via
  // infeasibility monotonicity: reject-cache hits plus branch prunes
  // under a subset just swept infeasible.
  std::size_t cache_skips = 0;
  // Subsets proven feasible by the accept cache without a sweep.
  std::size_t accept_skips = 0;
  // Branches cut by the penalty upper-bound test.
  std::size_t bound_skips = 0;
  // Segments answered from the incremental cache without a solve
  // (always 0 outside incremental mode).
  std::size_t segment_reuses = 0;
};

// Cumulative diagnostics for the incremental mode (DESIGN.md §12).
// Purely observational: none of these influence decisions.
struct OptimizerIncrementalStats {
  std::size_t runs = 0;
  std::size_t segment_solves = 0;
  std::size_t segment_reuses = 0;
  // Solves that started from a warm-start hint (previous solution of a
  // content-identical segment whose rates changed).
  std::size_t warm_hints = 0;
  std::size_t baseline_full_recounts = 0;
  std::size_t baseline_delta_recounts = 0;
  // Runs that had to rebuild everything because the topology changed
  // without a note_links_changed() call (or the pending set overflowed).
  std::size_t cold_fallbacks = 0;
};

// Per-solve scratch and the compiled sweep region; defined in the .cc.
// Each concurrent segment solver owns one, so no state is shared.
struct OptimizerSegmentScratch;
struct OptimizerSegmentOutcome;

class Optimizer {
 public:
  Optimizer(topology::Topology& topo, const CapacityConstraint& constraint,
            PenaltyFunction penalty, OptimizerConfig config = {});
  ~Optimizer();

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  // Globally optimizes over the active corrupting links, disabling the
  // optimal subset. Call whenever a link is (re-)enabled.
  OptimizerResult run(const CorruptionSet& corruption);

  // Attaches observability: every run() reports its OptimizerResult
  // counters to the registry and its wall time to the
  // "optimizer.run_s" timer (DESIGN.md §8). Counters are recorded on
  // the calling thread after the parallel segment merge, so they stay
  // bit-identical for any `solver_threads`. Pass nullptr to detach.
  void set_sink(obs::Sink* sink);

  // Incremental mode (DESIGN.md §12). When on, the optimizer keeps its
  // baseline path counts, per-ToR upstream closures, and per-segment
  // solutions alive across runs, invalidating only what a noted link
  // change can actually affect. Decisions are identical to a cold solve
  // (disable set, penalties, enabled mask); only search-effort
  // diagnostics (subsets_evaluated and friends) may differ. Requires
  // the caller to report every external enabled-state or corruption-
  // rate change via note_links_changed(); an unnoted topology change is
  // detected by state_version and degrades to a cold solve.
  void set_incremental(bool enabled);
  [[nodiscard]] bool incremental() const { return incremental_; }

  // Reports that the enabled state or corruption rate of `links` changed
  // since the last run()/note. Cheap: appends to a pending list and
  // drops cached segment solutions whose sweep region intersects the
  // changed links. Safe to call with links the optimizer itself just
  // disabled (their entries simply go stale). No-op outside incremental
  // mode.
  void note_links_changed(std::span<const LinkId> links);

  [[nodiscard]] const OptimizerIncrementalStats& incremental_stats() const {
    return inc_stats_;
  }

  // Drops all derived state (baseline path counts, incremental caches).
  // Called on checkpoint restore (DESIGN.md §14): the caches are keyed
  // by the topology's state version, and a restore can rewind the
  // version counter to a value this optimizer already saw with a
  // *different* enabled mask — a stale hit would silently corrupt the
  // next run. Re-derivation is deterministic and touches no metrics, so
  // dropping keeps branch runs bit-identical to fresh ones.
  void drop_derived_state();

 private:
  OptimizerResult run_impl(const CorruptionSet& corruption);

  // Exact branch-and-bound (or greedy, over-budget) search within one
  // segment. Pure with respect to `topo_`: reads link state, never
  // writes, so segments may be solved concurrently. `warm`, when
  // non-null, is a previous solution (per-candidate selected flags, in
  // segment link order) evaluated once after cache setup to seed the
  // accept/reject caches — it never changes the decision, only the
  // search effort. `capture_region` additionally records the segment's
  // sweep-region link mask in the outcome (for incremental caching).
  OptimizerSegmentOutcome solve_segment(const Segment& segment,
                                        const CorruptionSet& corruption,
                                        OptimizerSegmentScratch& scratch,
                                        const std::vector<char>* warm,
                                        bool capture_region) const;

  // Builds the affected-switch sweep region of one segment into scratch.
  void compile_region(const Segment& segment,
                      OptimizerSegmentScratch& scratch) const;

  topology::Topology* topo_;
  const CapacityConstraint* constraint_;
  PenaltyFunction penalty_;
  OptimizerConfig config_;
  PathCounter paths_;
  // Scratch reused across runs (serial phases only).
  std::vector<std::uint64_t> scratch_paths_;
  common::DynamicBitset scratch_mask_;
  std::vector<char> scratch_visited_;
  std::unique_ptr<OptimizerSegmentScratch> scratch_;
  // Unmasked path counts (and the ToRs they violate, normally none) for
  // the current enabled state, keyed by the topology's state version;
  // lets the pruning pass recount only the downward closure of the
  // candidate links instead of the whole fabric.
  std::vector<std::uint64_t> baseline_counts_;
  std::vector<SwitchId> baseline_violated_;
  std::uint64_t baseline_version_ = 0;
  PathCounter::SweepScratch sweep_scratch_;

  // --- Incremental mode state (DESIGN.md §12) ---
  // A previously solved segment kept across runs. Reused verbatim when
  // its sweep region saw no noted change and the candidate set + rates
  // are identical; otherwise its `selected` flags warm-start the solve.
  struct CachedSegment {
    std::vector<LinkId> links;    // Segment candidates, id-sorted.
    std::vector<SwitchId> tors;   // Endangered ToRs of the segment.
    std::vector<double> rates;    // Corruption rate per candidate.
    LinkMask region;              // Sweep-region link mask (uplinks).
    std::vector<char> selected;   // Solution flags, per candidate.
    double penalty = 0.0;
    bool exact = true;
    bool fresh = false;  // False once a noted change touches `region`.
  };

  void sync_incremental_state();
  // Re-evaluates the violation flag of the ToRs in touched_tors_ and
  // merges the result into the id-sorted baseline_violated_.
  void merge_baseline_violated();

  bool incremental_ = false;
  // Set when the topology changed without a note (or pending overflow);
  // the next run clears all incremental state first.
  bool drift_ = false;
  std::uint64_t tracked_version_ = 0;
  std::vector<LinkId> pending_changed_;
  static constexpr std::size_t kMaxPendingChanges = 1024;
  std::vector<SwitchId> touched_tors_;
  std::unique_ptr<TorClosureCache> closures_;
  // Keyed by the segment's lowest candidate link id.
  std::unordered_map<std::uint32_t, CachedSegment> segment_cache_;
  OptimizerIncrementalStats inc_stats_;

  // Observability (all inert when sink_ is null).
  obs::Sink* sink_ = nullptr;
  obs::Counter obs_runs_;
  obs::Counter obs_disabled_;
  obs::Counter obs_pruned_;
  obs::Counter obs_segments_;
  obs::Counter obs_subsets_;
  obs::Counter obs_cache_skips_;
  obs::Counter obs_accept_skips_;
  obs::Counter obs_bound_skips_;
  obs::Histogram obs_disabled_per_run_;
  obs::Histogram obs_run_timer_;

  void refresh_baseline();
};

}  // namespace corropt::core
