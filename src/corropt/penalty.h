// Corruption penalty functions.
//
// CorrOpt minimizes the total penalty of active corrupting links,
// sum over links of (1 - d_l) * I(f_l), where I is a monotonically
// increasing function reflecting how loss rate degrades application
// performance (Section 5.1). The paper's evaluation uses I(f) = f, making
// total penalty proportional to corruption losses under equal utilization;
// we also provide a step penalty (SLA-style) and a TCP-throughput-shaped
// penalty derived from the Mathis 1/sqrt(p) law for ablations.
#pragma once

namespace corropt::core {

class PenaltyFunction {
 public:
  // I(f) = f. The paper's choice (Section 7.1).
  static PenaltyFunction linear();
  // I(f) = 1 if f >= threshold else 0: penalizes links violating an SLA.
  static PenaltyFunction step(double threshold);
  // Fraction of TCP throughput lost on a path with loss rate f, from the
  // Mathis model (throughput ~ 1/sqrt(f)): I(f) = 1 - 1/(1 + sqrt(f/f0))
  // with f0 the loss rate at which throughput halves.
  static PenaltyFunction tcp_throughput(double half_loss_rate = 1e-4);

  // Evaluates I(loss_rate); monotone non-decreasing, I(0) = 0.
  [[nodiscard]] double operator()(double loss_rate) const;

  // Two functions compare equal iff they evaluate identically everywhere
  // (same kind and parameter). Lets caches key on the penalty in use.
  friend bool operator==(const PenaltyFunction& a, const PenaltyFunction& b) {
    return a.kind_ == b.kind_ && a.param_ == b.param_;
  }

 private:
  enum class Kind { kLinear, kStep, kTcp };
  PenaltyFunction(Kind kind, double param) : kind_(kind), param_(param) {}

  Kind kind_;
  double param_;
};

}  // namespace corropt::core
