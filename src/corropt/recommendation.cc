#include "corropt/recommendation.h"

#include <cassert>

#include "topology/topology.h"

namespace corropt::core {

using faults::RepairAction;
using topology::LinkDirection;

RecommendationEngine::RecommendationEngine(
    const telemetry::NetworkState& state, double corruption_threshold)
    : state_(&state), threshold_(corruption_threshold) {}

bool RecommendationEngine::neighbors_corrupting(LinkId link) const {
  const topology::Topology& topo = state_->topo();
  const topology::Link& l = topo.link_at(link);
  for (common::SwitchId end : {l.lower, l.upper}) {
    const topology::Switch& sw = topo.switch_at(end);
    for (const auto& list : {sw.uplinks, sw.downlinks}) {
      for (LinkId neighbor : list) {
        if (neighbor == link) continue;
        if (state_->link_is_corrupting(neighbor, threshold_)) return true;
      }
    }
  }
  return false;
}

Recommendation RecommendationEngine::recommend(DirectionId corrupting_dir,
                                               bool recently_reseated) const {
  const LinkId link = topology::link_of(corrupting_dir);
  const DirectionId opposite_dir = topology::opposite(corrupting_dir);

  // Line 2-4: corruption on co-located links implies a shared component
  // (breakout cable or switch backplane).
  if (neighbors_corrupting(link)) {
    return {RepairAction::kReplaceSharedComponent,
            "co-located links also corrupting: shared component suspected"};
  }

  // Line 5-6: bidirectional corruption implies cable damage; it is
  // otherwise rare (8.2% of corrupting links).
  if (state_->corruption_rate(opposite_dir) >= threshold_) {
    return {RepairAction::kReplaceFiber,
            "both directions corrupting: damaged cable suspected"};
  }

  // Lines 7-9. With the corrupting direction transmitted at the far end:
  // Rx1 is the receive power where corruption is observed, Rx2 the
  // receive power at the far end, and Tx2 the far end's transmit power
  // (which feeds Rx1).
  const double rx1 = state_->rx_power_dbm(corrupting_dir);
  const double rx2 = state_->rx_power_dbm(opposite_dir);
  const double tx2 = state_->tx_power_dbm(corrupting_dir);
  const telemetry::OpticalTech& tech = state_->tech();

  // Line 10-11: weak far-end laser.
  if (tech.tx_is_low(tx2)) {
    return {RepairAction::kReplaceRemoteTransceiver,
            "far-end TxPower low: decaying transmitter suspected"};
  }
  // Line 12-13: both receive powers low.
  if (tech.rx_is_low(rx1) && tech.rx_is_low(rx2)) {
    return {RepairAction::kReplaceFiber,
            "RxPower low on both ends: bent or damaged fiber suspected"};
  }
  // Line 14-15: one receive power low.
  if (tech.rx_is_low(rx1)) {
    return {RepairAction::kCleanFiber,
            "RxPower low on one end: connector contamination suspected"};
  }
  // Lines 16-20: healthy optics; non-optical issue.
  if (!recently_reseated) {
    return {RepairAction::kReseatTransceiver,
            "optics healthy: loose transceiver suspected"};
  }
  return {RepairAction::kReplaceTransceiver,
          "optics healthy and reseat already attempted: bad transceiver"};
}

Recommendation RecommendationEngine::recommend_link(
    LinkId link, bool recently_reseated) const {
  const DirectionId up = topology::direction_id(link, LinkDirection::kUp);
  const DirectionId down = topology::direction_id(link, LinkDirection::kDown);
  const DirectionId worse =
      state_->corruption_rate(up) >= state_->corruption_rate(down) ? up
                                                                   : down;
  return recommend(worse, recently_reseated);
}

}  // namespace corropt::core
