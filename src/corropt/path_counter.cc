#include "corropt/path_counter.h"

#include <algorithm>
#include <bit>
#include <cassert>

namespace corropt::core {
namespace {

// Extracts `count` (1..64) consecutive bits starting at `base` from a
// bitset's word array. Links added per switch get consecutive ids, so a
// switch's uplink enabled/masked states live in at most two words.
inline std::uint64_t extract_window(const std::uint64_t* words,
                                    std::uint32_t base, std::uint32_t count) {
  const std::uint32_t shift = base & 63u;
  std::uint64_t bits = words[base >> 6] >> shift;
  if (shift != 0 && shift + count > 64) {
    bits |= words[(base >> 6) + 1] << (64 - shift);
  }
  if (count < 64) bits &= (std::uint64_t{1} << count) - 1;
  return bits;
}

inline std::uint64_t all_ones(std::uint32_t count) {
  return count < 64 ? (std::uint64_t{1} << count) - 1 : ~std::uint64_t{0};
}

}  // namespace

PathCounter::PathCounter(const topology::Topology& topo) : topo_(&topo) {
  const std::size_t switches = topo.switch_count();
  const std::size_t links = topo.link_count();

  // Flatten per-switch uplink lists into CSR arrays indexed by switch.
  up_offset_.assign(switches + 1, 0);
  up_link_.reserve(links);
  up_upper_.reserve(links);
  for (std::size_t s = 0; s < switches; ++s) {
    up_offset_[s] = static_cast<std::uint32_t>(up_link_.size());
    for (LinkId uplink : topo.switches()[s].uplinks) {
      up_link_.push_back(static_cast<std::uint32_t>(uplink.index()));
      up_upper_.push_back(
          static_cast<std::uint32_t>(topo.link_at(uplink).upper.index()));
    }
  }
  up_offset_[switches] = static_cast<std::uint32_t>(up_link_.size());


  // Inverted CSR: counting sort of links by upper endpoint.
  down_offset_.assign(switches + 1, 0);
  for (const topology::Link& link : topo.links()) {
    ++down_offset_[link.upper.index() + 1];
  }
  for (std::size_t s = 0; s < switches; ++s) {
    down_offset_[s + 1] += down_offset_[s];
  }
  down_lower_.resize(topo.link_count());
  {
    std::vector<std::uint32_t> cursor(down_offset_.begin(),
                                      down_offset_.end() - 1);
    for (const topology::Link& link : topo.links()) {
      down_lower_[cursor[link.upper.index()]++] =
          static_cast<std::uint32_t>(link.lower.index());
    }
  }

  // Level-descending switch order; the leading top_count_ entries are the
  // top-level switches whose path count is the constant 1.
  order_.reserve(switches);
  const int top = topo.top_level();
  for (int level = top; level >= 0; --level) {
    for (SwitchId id : topo.switches_at_level(level)) {
      order_.push_back(static_cast<std::uint32_t>(id.index()));
    }
    if (level == top) top_count_ = order_.size();
  }

  // Packed per-switch sweep metadata, in sweep (level-descending) order.
  // link_base/ubase record fat-tree regularities the hot loop exploits:
  // contiguous uplink link ids (a switch's uplinks are added back to
  // back) let one or two bitset word reads yield the active-bit window;
  // consecutive upper ids (a ToR's aggs, an agg's spines) let the
  // all-active case sum a sequential counts slice; uppers all at the top
  // level (count == 1 always) reduce the sum to a popcount.
  nodes_.reserve(order_.size() - top_count_);
  for (std::size_t i = top_count_; i < order_.size(); ++i) {
    const std::uint32_t s = order_[i];
    SweepNode node;
    node.sw = s;
    node.begin = up_offset_[s];
    node.count = up_offset_[s + 1] - node.begin;
    node.link_base = kScatteredUplinks;
    node.ubase = kScatteredUplinks;
    node.flags = topo.switches()[s].level == 0 ? kNodeTor : 0;
    bool at_top = node.count > 0;
    bool contiguous = node.count > 0 && node.count <= 64;
    bool consecutive_uppers = contiguous;
    for (std::uint32_t u = node.begin; u < node.begin + node.count; ++u) {
      const std::uint32_t k = u - node.begin;
      if (up_link_[u] != up_link_[node.begin] + k) contiguous = false;
      if (up_upper_[u] != up_upper_[node.begin] + k) {
        consecutive_uppers = false;
      }
      if (topo.switches()[up_upper_[u]].level != top) at_top = false;
    }
    if (contiguous) {
      node.link_base = up_link_[node.begin];
      if (consecutive_uppers) node.ubase = up_upper_[node.begin];
      if (at_top) node.flags |= kNodeUppersAtTop;
    }
    nodes_.push_back(node);
  }

  // Design capacity: sweep with every installed link conducting.
  design_paths_.assign(switches, 0);
  for (std::size_t i = 0; i < top_count_; ++i) design_paths_[order_[i]] = 1;
  for (std::size_t i = top_count_; i < order_.size(); ++i) {
    const std::uint32_t s = order_[i];
    std::uint64_t total = 0;
    const std::uint32_t begin = up_offset_[s];
    const std::uint32_t end = up_offset_[s + 1];
    for (std::uint32_t u = begin; u < end; ++u) {
      total += design_paths_[up_upper_[u]];
    }
    design_paths_[s] = total;
  }
}

void PathCounter::up_paths_into(std::vector<std::uint64_t>& out,
                                const LinkMask* extra_off) const {
  out.assign(topo_->switch_count(), 0);
  for (std::size_t i = 0; i < top_count_; ++i) out[order_[i]] = 1;
  const std::uint64_t* ew = topo_->enabled_mask().words().data();
  const std::uint64_t* xw = nullptr;
  if (extra_off != nullptr) {
    assert(extra_off->size() == topo_->link_count());
    xw = extra_off->words().data();
  }
  SliceMemo memo;
  for (const SweepNode& node : nodes_) {
    out[node.sw] = node_sum(node, ew, xw, out.data(), memo);
  }
}

std::uint64_t PathCounter::node_sum(const SweepNode& node,
                                    const std::uint64_t* enabled_words,
                                    const std::uint64_t* masked_words,
                                    const std::uint64_t* counts,
                                    SliceMemo& memo) const {
  const std::uint32_t count = node.count;
  std::uint64_t total = 0;
  if (node.link_base != kScatteredUplinks) {
    // Fast path: one (or two) word reads give the active-bit window.
    std::uint64_t bits = extract_window(enabled_words, node.link_base, count);
    if (masked_words != nullptr) {
      bits &= ~extract_window(masked_words, node.link_base, count);
    }
    if ((node.flags & kNodeUppersAtTop) != 0) {
      // Every active uplink contributes exactly 1.
      return static_cast<std::uint64_t>(std::popcount(bits));
    }
    const std::uint32_t* upper = up_upper_.data() + node.begin;
    if (bits == all_ones(count)) {
      if (node.ubase != kScatteredUplinks) {
        // Consecutive uppers: a sequential slice sum. Pod siblings share
        // the slice, so the previous switch's sum usually still applies.
        if (memo.valid && memo.ubase == node.ubase && memo.count == count) {
          return memo.sum;
        }
        // Four independent accumulators break the serial add chain (the
        // -O2 build does not autovectorize runtime-count sums).
        std::uint64_t t0 = 0, t1 = 0, t2 = 0, t3 = 0;
        std::uint32_t k = 0;
        const std::uint64_t* c = counts + node.ubase;
        for (; k + 4 <= count; k += 4) {
          t0 += c[k];
          t1 += c[k + 1];
          t2 += c[k + 2];
          t3 += c[k + 3];
        }
        for (; k < count; ++k) t0 += c[k];
        total = (t0 + t1) + (t2 + t3);
        memo = SliceMemo{node.ubase, count, total, true};
      } else {
        std::uint64_t t0 = 0, t1 = 0, t2 = 0, t3 = 0;
        std::uint32_t k = 0;
        for (; k + 4 <= count; k += 4) {
          t0 += counts[upper[k]];
          t1 += counts[upper[k + 1]];
          t2 += counts[upper[k + 2]];
          t3 += counts[upper[k + 3]];
        }
        for (; k < count; ++k) t0 += counts[upper[k]];
        total = (t0 + t1) + (t2 + t3);
      }
    } else {
      while (bits != 0) {
        total += counts[upper[std::countr_zero(bits)]];
        bits &= bits - 1;
      }
    }
  } else {
    for (std::uint32_t u = node.begin; u < node.begin + count; ++u) {
      const std::uint32_t link = up_link_[u];
      const bool active =
          ((enabled_words[link >> 6] >> (link & 63u)) & 1u) != 0 &&
          (masked_words == nullptr ||
           ((masked_words[link >> 6] >> (link & 63u)) & 1u) == 0);
      if (active) total += counts[up_upper_[u]];
    }
  }
  return total;
}

std::uint64_t PathCounter::mark_masked_closure(
    std::span<const LinkId> masked_links, SweepScratch& scratch) const {
  const std::size_t switches = topo_->switch_count();
  if (scratch.stamp.size() != switches) scratch.stamp.assign(switches, 0);
  const std::uint64_t epoch = ++scratch.epoch;
  scratch.frontier.clear();

  // Seed with the lower endpoints of masked links that are actually
  // conducting (masking an already-disabled link changes nothing).
  const common::DynamicBitset& enabled = topo_->enabled_mask();
  for (LinkId link : masked_links) {
    if (!enabled.test(link.index())) continue;
    const std::uint32_t lower =
        static_cast<std::uint32_t>(topo_->link_at(link).lower.index());
    if (scratch.stamp[lower] != epoch) {
      scratch.stamp[lower] = epoch;
      scratch.frontier.push_back(lower);
    }
  }

  // Downward closure: every switch with an upward path through a masked
  // link. Counts of switches outside the closure keep their baseline.
  for (std::size_t head = 0; head < scratch.frontier.size(); ++head) {
    const std::uint32_t s = scratch.frontier[head];
    const std::uint32_t begin = down_offset_[s];
    const std::uint32_t end = down_offset_[s + 1];
    for (std::uint32_t d = begin; d < end; ++d) {
      const std::uint32_t lower = down_lower_[d];
      if (scratch.stamp[lower] != epoch) {
        scratch.stamp[lower] = epoch;
        scratch.frontier.push_back(lower);
      }
    }
  }
  return epoch;
}

void PathCounter::up_paths_masked_from_baseline(
    std::vector<std::uint64_t>& out, std::span<const std::uint64_t> baseline,
    const LinkMask& masked, std::span<const LinkId> masked_links,
    SweepScratch& scratch) const {
  assert(baseline.size() == topo_->switch_count());
  assert(masked.size() == topo_->link_count());
  out.assign(baseline.begin(), baseline.end());
  const std::uint64_t epoch = mark_masked_closure(masked_links, scratch);

  // Recompute affected switches in level-descending order; `out` holds
  // the merged counts, so uplink reads need no affected/unaffected split.
  const std::uint64_t* ew = topo_->enabled_mask().words().data();
  const std::uint64_t* xw = masked.words().data();
  SliceMemo memo;
  for (const SweepNode& node : nodes_) {
    if (scratch.stamp[node.sw] != epoch) continue;
    out[node.sw] = node_sum(node, ew, xw, out.data(), memo);
  }
}

void PathCounter::refresh_counts_after_changes(
    std::vector<std::uint64_t>& counts, std::span<const LinkId> changed_links,
    std::vector<SwitchId>* touched_tors, SweepScratch& scratch) const {
  assert(counts.size() == topo_->switch_count());
  if (touched_tors != nullptr) touched_tors->clear();

  const std::size_t switches = topo_->switch_count();
  if (scratch.stamp.size() != switches) scratch.stamp.assign(switches, 0);
  const std::uint64_t epoch = ++scratch.epoch;
  scratch.frontier.clear();

  // Seed every changed link's lower endpoint unconditionally: whether
  // the flip enabled or disabled the link, the counts below it moved.
  for (LinkId link : changed_links) {
    const std::uint32_t lower =
        static_cast<std::uint32_t>(topo_->link_at(link).lower.index());
    if (scratch.stamp[lower] != epoch) {
      scratch.stamp[lower] = epoch;
      scratch.frontier.push_back(lower);
    }
  }
  for (std::size_t head = 0; head < scratch.frontier.size(); ++head) {
    const std::uint32_t s = scratch.frontier[head];
    const std::uint32_t begin = down_offset_[s];
    const std::uint32_t end = down_offset_[s + 1];
    for (std::uint32_t d = begin; d < end; ++d) {
      const std::uint32_t lower = down_lower_[d];
      if (scratch.stamp[lower] != epoch) {
        scratch.stamp[lower] = epoch;
        scratch.frontier.push_back(lower);
      }
    }
  }

  // Recompute closure members in level-descending order against the
  // current enabled mask; out-of-closure reads stay valid (their counts
  // did not change). Nodes within the ToR level come in id order, so
  // touched_tors is id-sorted for the caller's merge.
  const std::uint64_t* ew = topo_->enabled_mask().words().data();
  SliceMemo memo;
  for (const SweepNode& node : nodes_) {
    if (scratch.stamp[node.sw] != epoch) continue;
    counts[node.sw] = node_sum(node, ew, nullptr, counts.data(), memo);
    if (touched_tors != nullptr && (node.flags & kNodeTor) != 0) {
      touched_tors->push_back(SwitchId(node.sw));
    }
  }
}

void PathCounter::masked_violated_tors_into(
    std::vector<SwitchId>& violated, std::span<const std::uint64_t> baseline,
    std::span<const SwitchId> baseline_violated, const LinkMask& masked,
    std::span<const LinkId> masked_links, const CapacityConstraint& constraint,
    std::vector<std::uint64_t>& counts, SweepScratch& scratch) const {
  assert(baseline.size() == topo_->switch_count());
  assert(masked.size() == topo_->link_count());
  violated.clear();
  counts.assign(baseline.begin(), baseline.end());
  const std::uint64_t epoch = mark_masked_closure(masked_links, scratch);

  const std::uint64_t* ew = topo_->enabled_mask().words().data();
  const std::uint64_t* xw = masked.words().data();
  SliceMemo memo;
  for (const SweepNode& node : nodes_) {
    if (scratch.stamp[node.sw] != epoch) continue;
    const std::uint64_t total = node_sum(node, ew, xw, counts.data(), memo);
    counts[node.sw] = total;
    if ((node.flags & kNodeTor) != 0 &&
        constraint.below_min(SwitchId(node.sw), design_paths_[node.sw],
                             total)) {
      violated.push_back(SwitchId(node.sw));
    }
  }

  // ToRs outside the closure keep their baseline verdict. Nodes are in
  // id order within the ToR level, so both lists are id-sorted; merge.
  if (!baseline_violated.empty()) {
    std::size_t before = violated.size();
    for (SwitchId tor : baseline_violated) {
      if (scratch.stamp[tor.index()] != epoch) violated.push_back(tor);
    }
    if (before != 0 && violated.size() != before) {
      std::inplace_merge(violated.begin(),
                         violated.begin() + static_cast<std::ptrdiff_t>(before),
                         violated.end());
    }
  }
}

std::vector<std::uint64_t> PathCounter::up_paths(
    const LinkMask* extra_off) const {
  std::vector<std::uint64_t> paths;
  up_paths_into(paths, extra_off);
  return paths;
}

std::vector<SwitchId> PathCounter::violated_tors(
    std::span<const std::uint64_t> up_paths,
    const CapacityConstraint& constraint) const {
  std::vector<SwitchId> violated;
  for (SwitchId tor : topo_->tors()) {
    if (constraint.below_min(tor, design_paths_[tor.index()],
                             up_paths[tor.index()])) {
      violated.push_back(tor);
    }
  }
  return violated;
}

bool PathCounter::feasible(std::span<const std::uint64_t> up_paths,
                           const CapacityConstraint& constraint) const {
  for (SwitchId tor : topo_->tors()) {
    if (constraint.below_min(tor, design_paths_[tor.index()],
                             up_paths[tor.index()])) {
      return false;
    }
  }
  return true;
}

void PathCounter::upstream_links_into(LinkMask& mask,
                                      std::vector<char>& visited_scratch,
                                      std::span<const SwitchId> from) const {
  mask.assign(topo_->link_count());
  visited_scratch.assign(topo_->switch_count(), 0);
  // The upstream closure follows *installed* links (enabled or not):
  // a disabled link upstream of a violated ToR still belongs to the
  // pruned sub-topology, since re-enabling decisions may involve it.
  std::vector<std::uint32_t> frontier;
  frontier.reserve(from.size());
  for (SwitchId id : from) {
    if (!visited_scratch[id.index()]) {
      visited_scratch[id.index()] = 1;
      frontier.push_back(static_cast<std::uint32_t>(id.index()));
    }
  }
  while (!frontier.empty()) {
    const std::uint32_t current = frontier.back();
    frontier.pop_back();
    const std::uint32_t begin = up_offset_[current];
    const std::uint32_t end = up_offset_[current + 1];
    for (std::uint32_t u = begin; u < end; ++u) {
      mask.set(up_link_[u]);
      const std::uint32_t upper = up_upper_[u];
      if (!visited_scratch[upper]) {
        visited_scratch[upper] = 1;
        frontier.push_back(upper);
      }
    }
  }
}

LinkMask PathCounter::upstream_links(std::span<const SwitchId> from) const {
  LinkMask mask;
  std::vector<char> visited;
  upstream_links_into(mask, visited, from);
  return mask;
}

std::uint64_t count_paths_brute_force(const topology::Topology& topo,
                                      SwitchId from,
                                      const LinkMask* extra_off) {
  const topology::Switch& sw = topo.switch_at(from);
  if (sw.level == topo.top_level()) return 1;
  std::uint64_t total = 0;
  for (LinkId uplink : sw.uplinks) {
    if (!topo.is_enabled(uplink)) continue;
    if (extra_off != nullptr && extra_off->test(uplink.index())) continue;
    total += count_paths_brute_force(topo, topo.link_at(uplink).upper,
                                     extra_off);
  }
  return total;
}

}  // namespace corropt::core
