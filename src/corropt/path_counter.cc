#include "corropt/path_counter.h"

#include <cassert>

namespace corropt::core {

namespace {

// Shared top-down sweep. `link_active` decides which links conduct.
template <typename LinkActive>
std::vector<std::uint64_t> sweep(const topology::Topology& topo,
                                 LinkActive&& link_active) {
  std::vector<std::uint64_t> paths(topo.switch_count(), 0);
  const int top = topo.top_level();
  if (top < 0) return paths;
  for (SwitchId spine : topo.switches_at_level(top)) {
    paths[spine.index()] = 1;
  }
  for (int level = top - 1; level >= 0; --level) {
    for (SwitchId id : topo.switches_at_level(level)) {
      std::uint64_t total = 0;
      for (LinkId uplink : topo.switch_at(id).uplinks) {
        if (!link_active(uplink)) continue;
        total += paths[topo.link_at(uplink).upper.index()];
      }
      paths[id.index()] = total;
    }
  }
  return paths;
}

}  // namespace

PathCounter::PathCounter(const topology::Topology& topo) : topo_(&topo) {
  design_paths_ = sweep(topo, [](LinkId) { return true; });
}

std::vector<std::uint64_t> PathCounter::up_paths(
    const LinkMask* extra_off) const {
  if (extra_off == nullptr) {
    return sweep(*topo_,
                 [this](LinkId id) { return topo_->is_enabled(id); });
  }
  assert(extra_off->size() == topo_->link_count());
  return sweep(*topo_, [this, extra_off](LinkId id) {
    return topo_->is_enabled(id) && (*extra_off)[id.index()] == 0;
  });
}

std::vector<SwitchId> PathCounter::violated_tors(
    std::span<const std::uint64_t> up_paths,
    const CapacityConstraint& constraint) const {
  std::vector<SwitchId> violated;
  for (SwitchId tor : topo_->tors()) {
    const std::uint64_t required =
        constraint.min_paths(tor, design_paths_[tor.index()]);
    if (up_paths[tor.index()] < required) violated.push_back(tor);
  }
  return violated;
}

bool PathCounter::feasible(std::span<const std::uint64_t> up_paths,
                           const CapacityConstraint& constraint) const {
  for (SwitchId tor : topo_->tors()) {
    const std::uint64_t required =
        constraint.min_paths(tor, design_paths_[tor.index()]);
    if (up_paths[tor.index()] < required) return false;
  }
  return true;
}

LinkMask PathCounter::upstream_links(std::span<const SwitchId> from) const {
  LinkMask mask(topo_->link_count(), 0);
  std::vector<char> visited(topo_->switch_count(), 0);
  // The upstream closure follows *installed* links (enabled or not):
  // a disabled link upstream of a violated ToR still belongs to the
  // pruned sub-topology, since re-enabling decisions may involve it.
  std::vector<SwitchId> frontier(from.begin(), from.end());
  for (SwitchId id : frontier) visited[id.index()] = 1;
  while (!frontier.empty()) {
    const SwitchId current = frontier.back();
    frontier.pop_back();
    for (LinkId uplink : topo_->switch_at(current).uplinks) {
      mask[uplink.index()] = 1;
      const SwitchId upper = topo_->link_at(uplink).upper;
      if (!visited[upper.index()]) {
        visited[upper.index()] = 1;
        frontier.push_back(upper);
      }
    }
  }
  return mask;
}

std::uint64_t count_paths_brute_force(const topology::Topology& topo,
                                      SwitchId from,
                                      const LinkMask* extra_off) {
  const topology::Switch& sw = topo.switch_at(from);
  if (sw.level == topo.top_level()) return 1;
  std::uint64_t total = 0;
  for (LinkId uplink : sw.uplinks) {
    if (!topo.is_enabled(uplink)) continue;
    if (extra_off != nullptr && (*extra_off)[uplink.index()] != 0) continue;
    total += count_paths_brute_force(topo, topo.link_at(uplink).upper,
                                     extra_off);
  }
  return total;
}

}  // namespace corropt::core
