#include "corropt/penalty.h"

#include <cassert>
#include <cmath>

namespace corropt::core {

PenaltyFunction PenaltyFunction::linear() {
  return PenaltyFunction(Kind::kLinear, 0.0);
}

PenaltyFunction PenaltyFunction::step(double threshold) {
  assert(threshold > 0.0);
  return PenaltyFunction(Kind::kStep, threshold);
}

PenaltyFunction PenaltyFunction::tcp_throughput(double half_loss_rate) {
  assert(half_loss_rate > 0.0);
  return PenaltyFunction(Kind::kTcp, half_loss_rate);
}

double PenaltyFunction::operator()(double loss_rate) const {
  assert(loss_rate >= 0.0);
  switch (kind_) {
    case Kind::kLinear:
      return loss_rate;
    case Kind::kStep:
      return loss_rate >= param_ ? 1.0 : 0.0;
    case Kind::kTcp: {
      if (loss_rate == 0.0) return 0.0;
      const double ratio = std::sqrt(loss_rate / param_);
      return 1.0 - 1.0 / (1.0 + ratio);
    }
  }
  return 0.0;
}

}  // namespace corropt::core
