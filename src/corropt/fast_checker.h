// CorrOpt's fast checker (Section 5.1).
//
// When a link starts corrupting packets the controller must decide
// immediately whether disabling it is safe. Conceptually the checker
// recounts every ToR's valley-free paths with the candidate link removed
// and disables it iff no capacity constraint would be violated. Following
// the paper's implementation note — "we check the downstream of l,
// updating the path counts with the same method, beginning with the
// switch directly downstream of l" — the checker caches the network's
// path counts and, per decision, recomputes only the downward closure of
// the candidate's lower endpoint: O(1) work per link of the affected
// subtree rather than of the whole DCN. A topology state-version counter
// keeps the cache coherent when other actors (the optimizer, repairs)
// flip links.
//
// Precondition for the incremental path: the network currently satisfies
// every ToR's constraint (the controller maintains this invariant). ToRs
// outside the candidate's downstream closure keep their path counts, so
// only closure ToRs need rechecking.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/ids.h"
#include "common/snapshot.h"
#include "corropt/capacity.h"
#include "corropt/path_counter.h"
#include "obs/sink.h"
#include "topology/topology.h"

namespace corropt::core {

class FastChecker {
 public:
  // The checker mutates link state on `topo` when it disables a link.
  FastChecker(topology::Topology& topo, const CapacityConstraint& constraint);

  // Returns true (and disables `link`) when the network stays feasible
  // with `link` off; otherwise leaves the link enabled and returns false.
  // Already-disabled links return true (idempotent).
  bool try_disable(common::LinkId link);

  // Whether disabling `link` would keep every ToR feasible, without
  // changing any state. Incremental (downstream-closure) evaluation.
  [[nodiscard]] bool can_disable(common::LinkId link);

  // Whether disabling `link` stays feasible even while `also_off` links
  // are simultaneously out of service. Used for collateral-aware
  // decisions (Section 8): repairing a breakout leg takes the healthy
  // siblings down too, so the conservative check masks the whole bundle.
  // Always evaluated with a full sweep.
  [[nodiscard]] bool can_disable(common::LinkId link,
                                 std::span<const common::LinkId> also_off)
      const;

  [[nodiscard]] const PathCounter& paths() const { return paths_; }

  // Attaches observability: per-decision counters ("fastcheck.checks",
  // ".disables", ".cache_refreshes", ".delta_updates",
  // ".closure_switches") and the "fastcheck.check_s" wall-clock timer.
  // Pass nullptr to detach.
  void set_sink(obs::Sink* sink);

  // Incremental mode (DESIGN.md §12): when on, note_links_changed folds
  // an external enabled-state change into the cached counts by
  // recounting only the changed links' downward closure, instead of the
  // full-fabric refresh the next decision would otherwise pay. Verdicts
  // are identical either way.
  void set_incremental(bool enabled) { incremental_ = enabled; }

  // Reports external enabled-state changes of `links` (the checker's own
  // try_disable already self-maintains). No-op outside incremental mode
  // or when the cache is cold; unnoted changes are still caught by the
  // state-version check and trigger a full refresh.
  void note_links_changed(std::span<const common::LinkId> links);

  // Checkpointing (DESIGN.md §14): the path-count cache and its version
  // key. Serialized faithfully — invalidating instead would make a
  // restored run pay (and count, via fastcheck.cache_refreshes) an
  // extra refresh the equivalent fresh run never performs, breaking
  // registry-digest equivalence.
  void snapshot_to(common::snap::Writer& w) const;
  void restore_from(common::snap::Reader& r);

 private:
  struct ClosureResult {
    bool feasible = true;
    // (switch, new up-path count) pairs for the downstream closure,
    // applied to the cache when the disable goes through.
    std::vector<std::pair<common::SwitchId, std::uint64_t>> updates;
  };

  // Recomputes cached path counts from scratch when the topology changed
  // behind our back.
  void refresh_cache();
  // Evaluates the downstream closure of `link`'s lower endpoint with the
  // link masked off.
  ClosureResult evaluate_closure(common::LinkId link);

  topology::Topology* topo_;
  const CapacityConstraint* constraint_;
  PathCounter paths_;
  std::vector<std::uint64_t> cached_counts_;
  std::uint64_t cached_version_ = 0;
  bool cache_valid_ = false;
  bool incremental_ = false;
  PathCounter::SweepScratch note_scratch_;
  // Scratch for closure traversal.
  std::vector<char> in_closure_;
  std::vector<common::SwitchId> closure_;
  std::vector<std::int32_t> slot_;

  // Observability (all inert when sink_ is null).
  obs::Sink* sink_ = nullptr;
  obs::Counter obs_checks_;
  obs::Counter obs_disables_;
  obs::Counter obs_cache_refreshes_;
  obs::Counter obs_delta_updates_;
  obs::Counter obs_closure_switches_;
  obs::Histogram obs_check_timer_;
};

}  // namespace corropt::core
