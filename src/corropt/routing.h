// WCMP routing weights over degraded topologies (Section 8, "Load
// balancing").
//
// CorrOpt disables corrupting links, making the topology asymmetric;
// plain ECMP would then overload the uplinks that lead into thin
// subtrees. The standard remedy (the "standard input" the paper refers
// to) is weighted-cost multipath: each switch splits upward traffic over
// its active uplinks in proportion to the number of spine paths
// reachable through each. This module computes those weights from the
// same O(|E|) path counts the fast checker uses, so the routing layer
// can be refreshed after every disable/enable with no extra sweeps.
#pragma once

#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "corropt/path_counter.h"
#include "topology/topology.h"

namespace corropt::core {

struct UplinkWeight {
  common::LinkId link;
  // Fraction of the switch's upward traffic to place on this link, in
  // [0, 1]; active uplinks of a switch sum to 1 (when any path exists).
  double weight = 0.0;
};

struct WcmpTable {
  // weights[switch.index()] = the switch's active uplinks with their
  // traffic shares. Spine switches and switches with no active upward
  // path have empty entries.
  std::vector<std::vector<UplinkWeight>> weights;

  // Convenience: the share assigned to `link` at its lower switch
  // (0 for disabled or unknown links).
  [[nodiscard]] double share(const topology::Topology& topo,
                             common::LinkId link) const;
};

// Computes WCMP weights proportional to spine-path counts through each
// active uplink. With an intact topology this degenerates to uniform
// ECMP.
[[nodiscard]] WcmpTable compute_wcmp(const topology::Topology& topo,
                                     const PathCounter& paths);

// Per-link upward traffic when every ToR sends one unit through
// `table`.
[[nodiscard]] std::vector<double> compute_link_traffic(
    const topology::Topology& topo, const WcmpTable& table);

// Expected relative load each spine-path "slot" sees when every ToR
// sends one unit of traffic upward through `table`: the imbalance
// metric. Returns the max over links of (traffic on link) divided by
// (traffic it would carry under perfectly balanced routing on the
// intact topology). 1.0 = perfectly balanced.
[[nodiscard]] double max_link_overload(const topology::Topology& topo,
                                       const WcmpTable& table);

}  // namespace corropt::core
