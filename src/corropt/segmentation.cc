#include "corropt/segmentation.h"

#include <algorithm>
#include <numeric>

namespace corropt::core {

namespace {

class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

std::vector<Segment> segment_candidates(
    const PathCounter& paths, std::span<const LinkId> candidates,
    std::span<const SwitchId> endangered_tors, TorClosureCache* closures) {
  if (candidates.empty()) return {};

  // Candidates in id order; union-find runs over their dense indices.
  std::vector<LinkId> links(candidates.begin(), candidates.end());
  std::sort(links.begin(), links.end());

  UnionFind uf(links.size());
  // tor_members[t] = candidate indices upstream of endangered ToR t.
  std::vector<std::vector<std::size_t>> tor_members(endangered_tors.size());
  LinkMask upstream_local;
  std::vector<char> visited;
  for (std::size_t t = 0; t < endangered_tors.size(); ++t) {
    const SwitchId tor = endangered_tors[t];
    const LinkMask* upstream;
    if (closures != nullptr) {
      upstream = &closures->closure(tor);
    } else {
      paths.upstream_links_into(upstream_local, visited, {&tor, 1});
      upstream = &upstream_local;
    }
    for (std::size_t i = 0; i < links.size(); ++i) {
      if (upstream->test(links[i].index())) tor_members[t].push_back(i);
    }
    for (std::size_t i = 1; i < tor_members[t].size(); ++i) {
      uf.unite(tor_members[t][0], tor_members[t][i]);
    }
  }

  // Gather segments keyed by union-find root; attach each ToR to the
  // segment of its members.
  // Links upstream of no endangered ToR stay unmerged singletons; they
  // are excluded by only materializing segments reached from a ToR
  // membership list.
  std::vector<Segment> segments;
  std::vector<std::size_t> root_to_segment(links.size(), SIZE_MAX);
  for (std::size_t t = 0; t < endangered_tors.size(); ++t) {
    if (tor_members[t].empty()) continue;
    const std::size_t root = uf.find(tor_members[t][0]);
    if (root_to_segment[root] == SIZE_MAX) {
      root_to_segment[root] = segments.size();
      segments.emplace_back();
    }
    segments[root_to_segment[root]].tors.push_back(endangered_tors[t]);
  }
  for (std::size_t i = 0; i < links.size(); ++i) {
    const std::size_t root = uf.find(i);
    if (root_to_segment[root] == SIZE_MAX) continue;  // Safe link.
    segments[root_to_segment[root]].links.push_back(links[i]);
  }
  return segments;
}

}  // namespace corropt::core
