#include "corropt/corruption_set.h"

#include <algorithm>
#include <cassert>

namespace corropt::core {

void CorruptionSet::mark(LinkId link, double loss_rate) {
  assert(loss_rate >= 0.0);
  ++epoch_;
  const auto it = entries_.find(link);
  if (it != entries_.end()) {
    it->second.rate = loss_rate;
    return;
  }
  entries_.emplace(link, Entry{loss_rate, next_seq_++});
}

void CorruptionSet::unmark(LinkId link) {
  ++epoch_;
  entries_.erase(link);
}

double CorruptionSet::rate(LinkId link) const {
  const auto it = entries_.find(link);
  return it == entries_.end() ? 0.0 : it->second.rate;
}

std::vector<LinkId> CorruptionSet::active(
    const topology::Topology& topo) const {
  std::vector<LinkId> out;
  out.reserve(entries_.size());
  for (const auto& [link, entry] : entries_) {
    if (topo.is_enabled(link)) out.push_back(link);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<LinkId> CorruptionSet::active_in_detection_order(
    const topology::Topology& topo) const {
  std::vector<std::pair<std::uint64_t, LinkId>> ordered;
  ordered.reserve(entries_.size());
  for (const auto& [link, entry] : entries_) {
    if (topo.is_enabled(link)) ordered.emplace_back(entry.detected_seq, link);
  }
  std::sort(ordered.begin(), ordered.end());
  std::vector<LinkId> out;
  out.reserve(ordered.size());
  for (const auto& [seq, link] : ordered) out.push_back(link);
  return out;
}

std::vector<LinkId> CorruptionSet::links_sorted() const {
  std::vector<LinkId> out;
  out.reserve(entries_.size());
  for (const auto& [link, entry] : entries_) out.push_back(link);
  std::sort(out.begin(), out.end());
  return out;
}

double CorruptionSet::total_active_penalty(
    const topology::Topology& topo, const PenaltyFunction& penalty) const {
  if (penalty_cache_.valid && penalty_cache_.topo == &topo &&
      penalty_cache_.topo_version == topo.state_version() &&
      penalty_cache_.epoch == epoch_ && penalty_cache_.penalty == penalty) {
    return penalty_cache_.value;
  }
  // Fold in link-id order: a floating-point sum in hash-map order would
  // depend on the map's insert/erase history, which differs between a
  // restored run and the fresh run it must match byte for byte.
  double total = 0.0;
  for (LinkId link : links_sorted()) {
    if (topo.is_enabled(link)) total += penalty(entries_.at(link).rate);
  }
  penalty_cache_ = PenaltyCache{true, &topo, topo.state_version(), epoch_,
                                penalty, total};
  return total;
}

void CorruptionSet::snapshot_to(common::snap::Writer& w) const {
  w.section(common::snap::tag('C', 'O', 'R', 'R'), 1);
  w.u64(entries_.size());
  for (LinkId link : links_sorted()) {
    const Entry& entry = entries_.at(link);
    w.u32(link.value());
    w.f64(entry.rate);
    w.u64(entry.detected_seq);
  }
  w.u64(next_seq_);
  w.u64(epoch_);
}

void CorruptionSet::restore_from(common::snap::Reader& r) {
  r.expect_section(common::snap::tag('C', 'O', 'R', 'R'));
  entries_.clear();
  const std::uint64_t count = r.u64();
  for (std::uint64_t i = 0; i < count; ++i) {
    const LinkId link(r.u32());
    Entry entry;
    entry.rate = r.f64();
    entry.detected_seq = r.u64();
    entries_.emplace(link, entry);
  }
  next_seq_ = r.u64();
  epoch_ = r.u64();
  // The memoized total holds a raw pointer to the source context's
  // topology; never carry it across a restore.
  penalty_cache_ = PenaltyCache{};
}

}  // namespace corropt::core
