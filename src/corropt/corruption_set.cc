#include "corropt/corruption_set.h"

#include <algorithm>
#include <cassert>

namespace corropt::core {

void CorruptionSet::mark(LinkId link, double loss_rate) {
  assert(loss_rate >= 0.0);
  const auto it = entries_.find(link);
  if (it != entries_.end()) {
    it->second.rate = loss_rate;
    return;
  }
  entries_.emplace(link, Entry{loss_rate, next_seq_++});
}

void CorruptionSet::unmark(LinkId link) { entries_.erase(link); }

double CorruptionSet::rate(LinkId link) const {
  const auto it = entries_.find(link);
  return it == entries_.end() ? 0.0 : it->second.rate;
}

std::vector<LinkId> CorruptionSet::active(
    const topology::Topology& topo) const {
  std::vector<LinkId> out;
  out.reserve(entries_.size());
  for (const auto& [link, entry] : entries_) {
    if (topo.is_enabled(link)) out.push_back(link);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<LinkId> CorruptionSet::active_in_detection_order(
    const topology::Topology& topo) const {
  std::vector<std::pair<std::uint64_t, LinkId>> ordered;
  ordered.reserve(entries_.size());
  for (const auto& [link, entry] : entries_) {
    if (topo.is_enabled(link)) ordered.emplace_back(entry.detected_seq, link);
  }
  std::sort(ordered.begin(), ordered.end());
  std::vector<LinkId> out;
  out.reserve(ordered.size());
  for (const auto& [seq, link] : ordered) out.push_back(link);
  return out;
}

double CorruptionSet::total_active_penalty(
    const topology::Topology& topo, const PenaltyFunction& penalty) const {
  double total = 0.0;
  for (const auto& [link, entry] : entries_) {
    if (topo.is_enabled(link)) total += penalty(entry.rate);
  }
  return total;
}

}  // namespace corropt::core
