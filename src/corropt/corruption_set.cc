#include "corropt/corruption_set.h"

#include <algorithm>
#include <cassert>

namespace corropt::core {

void CorruptionSet::mark(LinkId link, double loss_rate) {
  assert(loss_rate >= 0.0);
  ++epoch_;
  const auto it = entries_.find(link);
  if (it != entries_.end()) {
    it->second.rate = loss_rate;
    return;
  }
  entries_.emplace(link, Entry{loss_rate, next_seq_++});
}

void CorruptionSet::unmark(LinkId link) {
  ++epoch_;
  entries_.erase(link);
}

double CorruptionSet::rate(LinkId link) const {
  const auto it = entries_.find(link);
  return it == entries_.end() ? 0.0 : it->second.rate;
}

std::vector<LinkId> CorruptionSet::active(
    const topology::Topology& topo) const {
  std::vector<LinkId> out;
  out.reserve(entries_.size());
  for (const auto& [link, entry] : entries_) {
    if (topo.is_enabled(link)) out.push_back(link);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<LinkId> CorruptionSet::active_in_detection_order(
    const topology::Topology& topo) const {
  std::vector<std::pair<std::uint64_t, LinkId>> ordered;
  ordered.reserve(entries_.size());
  for (const auto& [link, entry] : entries_) {
    if (topo.is_enabled(link)) ordered.emplace_back(entry.detected_seq, link);
  }
  std::sort(ordered.begin(), ordered.end());
  std::vector<LinkId> out;
  out.reserve(ordered.size());
  for (const auto& [seq, link] : ordered) out.push_back(link);
  return out;
}

double CorruptionSet::total_active_penalty(
    const topology::Topology& topo, const PenaltyFunction& penalty) const {
  if (penalty_cache_.valid && penalty_cache_.topo == &topo &&
      penalty_cache_.topo_version == topo.state_version() &&
      penalty_cache_.epoch == epoch_ && penalty_cache_.penalty == penalty) {
    return penalty_cache_.value;
  }
  double total = 0.0;
  for (const auto& [link, entry] : entries_) {
    if (topo.is_enabled(link)) total += penalty(entry.rate);
  }
  penalty_cache_ = PenaltyCache{true, &topo, topo.state_version(), epoch_,
                                penalty, total};
  return total;
}

}  // namespace corropt::core
