// The state-of-the-art baseline: switch-local checking (Section 5.1).
//
// Production DCNs today disable a corrupting link only when the switch it
// attaches to keeps a threshold fraction sc of its uplinks active: with m
// uplinks, at most floor(m * (1 - sc)) may be disabled. To actually
// guarantee a ToR capacity constraint of c in a topology with r tiers
// above the ToRs, sc must be c^(1/r) (sqrt(c) for three-stage networks),
// which makes the check very conservative — the core sub-optimality that
// CorrOpt's global view removes (Figure 10).
#pragma once

#include <cmath>

#include "common/ids.h"
#include "topology/topology.h"

namespace corropt::core {

// The switch-local threshold that guarantees a ToR capacity constraint of
// `capacity_fraction` in a topology with `tiers_above_tor` levels above
// the ToR stage.
[[nodiscard]] inline double switch_local_threshold(double capacity_fraction,
                                                   int tiers_above_tor) {
  return std::pow(capacity_fraction, 1.0 / tiers_above_tor);
}

class SwitchLocalChecker {
 public:
  // `sc` is the fraction of uplinks every switch must keep active.
  SwitchLocalChecker(topology::Topology& topo, double sc);

  // Derives sc = c^(1/r) from the ToR constraint and the topology depth.
  static SwitchLocalChecker for_capacity(topology::Topology& topo,
                                         double capacity_fraction);

  // Disables `link` iff its switch (the lower endpoint, whose uplink it
  // is) would still keep ceil(m * sc) uplinks active. Idempotent on
  // already-disabled links.
  bool try_disable(common::LinkId link);

  [[nodiscard]] bool can_disable(common::LinkId link) const;

  // Maximum number of uplinks the lower switch of `link` may disable.
  [[nodiscard]] int disable_budget(common::SwitchId sw) const;

  [[nodiscard]] double sc() const { return sc_; }

 private:
  topology::Topology* topo_;
  double sc_;
};

}  // namespace corropt::core
