// Valley-free path counting (Section 5.1, "fast checker" machinery).
//
// The naive way to evaluate a ToR's available capacity enumerates every
// ToR-to-spine path, which is infeasible at DCN scale. The paper's O(|E|)
// dynamic program instead sweeps level by level from the spine downward:
// a spine switch has one (empty) path to itself; every other switch's
// path count is the sum of its active uplinks' upper-endpoint counts.
// This module implements that sweep plus a brute-force DFS enumerator
// used to verify it in tests.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/ids.h"
#include "corropt/capacity.h"
#include "topology/topology.h"

namespace corropt::core {

using common::LinkId;
using common::SwitchId;

// Per-link mask; masked links are treated as removed in addition to any
// administratively disabled links. Sized topology.link_count().
using LinkMask = std::vector<char>;

class PathCounter {
 public:
  explicit PathCounter(const topology::Topology& topo);

  // paths[switch.index()] = number of upward paths from the switch to the
  // top level through links that are enabled and not masked. `extra_off`
  // may be null (no extra removals).
  [[nodiscard]] std::vector<std::uint64_t> up_paths(
      const LinkMask* extra_off = nullptr) const;

  // Path counts through every installed link regardless of enabled state:
  // the topology's design capacity, the denominator of the constraint.
  [[nodiscard]] const std::vector<std::uint64_t>& design_paths() const {
    return design_paths_;
  }

  // ToRs whose available paths fall below their constraint under the
  // given counts.
  [[nodiscard]] std::vector<SwitchId> violated_tors(
      std::span<const std::uint64_t> up_paths,
      const CapacityConstraint& constraint) const;

  // True when no ToR violates its constraint under the given counts.
  [[nodiscard]] bool feasible(std::span<const std::uint64_t> up_paths,
                              const CapacityConstraint& constraint) const;

  // Links lying on some upward path from any switch in `from`: the
  // upstream closure used by the optimizer's topology pruning.
  [[nodiscard]] LinkMask upstream_links(
      std::span<const SwitchId> from) const;

  [[nodiscard]] const topology::Topology& topo() const { return *topo_; }

 private:
  const topology::Topology* topo_;
  std::vector<std::uint64_t> design_paths_;
};

// Exhaustive DFS path enumeration; exponential, for tests only.
[[nodiscard]] std::uint64_t count_paths_brute_force(
    const topology::Topology& topo, SwitchId from,
    const LinkMask* extra_off = nullptr);

}  // namespace corropt::core
