// Valley-free path counting (Section 5.1, "fast checker" machinery).
//
// The naive way to evaluate a ToR's available capacity enumerates every
// ToR-to-spine path, which is infeasible at DCN scale. The paper's O(|E|)
// dynamic program instead sweeps level by level from the spine downward:
// a spine switch has one (empty) path to itself; every other switch's
// path count is the sum of its active uplinks' upper-endpoint counts.
//
// The sweep is the hottest loop in the system (every optimizer pruning
// pass and every full feasibility recount runs it), so the counter
// flattens the topology's per-switch uplink vectors into CSR arrays at
// construction: one level-descending switch order plus contiguous
// (link index, upper switch index) pairs per switch. A sweep then streams
// through two uint32 arrays and two bitsets instead of pointer-chasing
// Switch and Link structs. This module also keeps the brute-force DFS
// enumerator used to verify the sweep in tests.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/bitset.h"
#include "common/ids.h"
#include "corropt/capacity.h"
#include "topology/topology.h"

namespace corropt::core {

using common::LinkId;
using common::SwitchId;

// Per-link mask; masked links are treated as removed in addition to any
// administratively disabled links. Sized topology.link_count().
using LinkMask = common::DynamicBitset;

class PathCounter {
 public:
  explicit PathCounter(const topology::Topology& topo);

  // paths[switch.index()] = number of upward paths from the switch to the
  // top level through links that are enabled and not masked. `extra_off`
  // may be null (no extra removals).
  [[nodiscard]] std::vector<std::uint64_t> up_paths(
      const LinkMask* extra_off = nullptr) const;

  // Allocation-free variant: writes the counts into `out` (resized to
  // switch_count). The optimizer's pruning pass calls this once per run
  // with a reused scratch buffer.
  void up_paths_into(std::vector<std::uint64_t>& out,
                     const LinkMask* extra_off = nullptr) const;

  // Reusable state for up_paths_masked_from_baseline: per-switch visit
  // stamps (epoch-tagged so they are never cleared) plus a BFS frontier.
  struct SweepScratch {
    std::vector<std::uint64_t> stamp;
    std::uint64_t epoch = 0;
    std::vector<std::uint32_t> frontier;
  };

  // Incremental masked recount. `baseline` must hold the unmasked counts
  // for the topology's *current* enabled state (i.e. what up_paths_into
  // with no mask would produce right now). Only switches in the downward
  // closure of the masked links' lower endpoints can differ from the
  // baseline, so the sweep recomputes exactly those and copies the rest.
  // Semantically identical to up_paths_into(out, &masked), far cheaper
  // when few links are masked. `masked_links` must list every set bit of
  // `masked` (extra entries for already-disabled links are harmless).
  void up_paths_masked_from_baseline(std::vector<std::uint64_t>& out,
                                     std::span<const std::uint64_t> baseline,
                                     const LinkMask& masked,
                                     std::span<const LinkId> masked_links,
                                     SweepScratch& scratch) const;

  // In-place delta refresh for long-lived count caches. `counts` must
  // hold the unmasked up-path counts of a *previous* enabled state that
  // differs from the topology's current state only on `changed_links`
  // (each listed link flipped enabled<->disabled any number of times;
  // unchanged links may appear too — they just widen the recount).
  // Recomputes the downward closure of the changed links' lower
  // endpoints against the current enabled mask, leaving every other
  // entry untouched; the result equals what up_paths_into would produce
  // from scratch. When `touched_tors` is non-null it receives the ToRs
  // inside the closure (id-sorted) — the only ToRs whose constraint
  // verdict can have changed. Unlike the masked variants above, the
  // closure is seeded from *all* changed links, conducting or not: a
  // just-disabled link no longer conducts but its removal still changed
  // its downstream counts.
  void refresh_counts_after_changes(std::vector<std::uint64_t>& counts,
                                    std::span<const LinkId> changed_links,
                                    std::vector<SwitchId>* touched_tors,
                                    SweepScratch& scratch) const;

  // Fused variant for the optimizer's pruning pass: computes the ToRs
  // violated under `masked` directly during the incremental recount,
  // avoiding the separate all-ToRs scan. `baseline_violated` must be
  // violated_tors(baseline, constraint) (ToRs outside the closure keep
  // their baseline status). Result equals
  // violated_tors(up_paths(&masked), constraint), in ToR id order.
  // `counts` is caller-owned scratch for the merged counts.
  void masked_violated_tors_into(std::vector<SwitchId>& violated,
                                 std::span<const std::uint64_t> baseline,
                                 std::span<const SwitchId> baseline_violated,
                                 const LinkMask& masked,
                                 std::span<const LinkId> masked_links,
                                 const CapacityConstraint& constraint,
                                 std::vector<std::uint64_t>& counts,
                                 SweepScratch& scratch) const;

  // Path counts through every installed link regardless of enabled state:
  // the topology's design capacity, the denominator of the constraint.
  [[nodiscard]] const std::vector<std::uint64_t>& design_paths() const {
    return design_paths_;
  }

  // ToRs whose available paths fall below their constraint under the
  // given counts.
  [[nodiscard]] std::vector<SwitchId> violated_tors(
      std::span<const std::uint64_t> up_paths,
      const CapacityConstraint& constraint) const;

  // True when no ToR violates its constraint under the given counts.
  [[nodiscard]] bool feasible(std::span<const std::uint64_t> up_paths,
                              const CapacityConstraint& constraint) const;

  // Links lying on some upward path from any switch in `from`: the
  // upstream closure used by the optimizer's topology pruning.
  [[nodiscard]] LinkMask upstream_links(
      std::span<const SwitchId> from) const;

  // Allocation-free variant for repeated closure queries: `mask` is
  // cleared and resized to link_count; `visited_scratch` is a caller-
  // owned per-switch flag buffer (resized here, cleared on return).
  void upstream_links_into(LinkMask& mask, std::vector<char>& visited_scratch,
                           std::span<const SwitchId> from) const;

  // --- CSR accessors (used by the optimizer's restricted region sweeps) --
  // Switch indices ordered top level first, then strictly descending
  // level; a top-down sweep visiting this order sees every switch after
  // all of its uplink upper endpoints.
  [[nodiscard]] std::span<const std::uint32_t> sweep_order() const {
    return order_;
  }
  // Number of leading sweep_order entries at the top level (path count 1).
  [[nodiscard]] std::size_t top_switch_count() const { return top_count_; }
  // Contiguous uplink (link index, upper switch index) pairs of a switch.
  struct UplinkSpan {
    const std::uint32_t* link;
    const std::uint32_t* upper;
    std::size_t count;
  };
  [[nodiscard]] UplinkSpan uplinks_of(std::size_t switch_index) const {
    const std::uint32_t begin = up_offset_[switch_index];
    const std::uint32_t end = up_offset_[switch_index + 1];
    return {up_link_.data() + begin, up_upper_.data() + begin,
            static_cast<std::size_t>(end - begin)};
  }

  [[nodiscard]] const topology::Topology& topo() const { return *topo_; }

 private:
  // Sentinel: the switch's uplink link ids (or upper switch ids) are not
  // one contiguous run of <= 64, so sweeps fall back to per-link tests.
  static constexpr std::uint32_t kScatteredUplinks = 0xFFFFFFFFu;

  // Node flags.
  static constexpr std::uint32_t kNodeUppersAtTop = 1u;  // all uppers top
  static constexpr std::uint32_t kNodeTor = 2u;          // level-0 switch

  // Per-switch sweep metadata packed into one sequential stream, in
  // level-descending order (top-level switches excluded: their count is
  // the constant 1). One 24-byte load replaces lookups in five arrays.
  struct SweepNode {
    std::uint32_t sw;         // switch index
    std::uint32_t begin;      // CSR offset of the first uplink
    std::uint32_t link_base;  // first link id, or kScatteredUplinks
    std::uint32_t ubase;      // first upper id if consecutive, else sentinel
    std::uint32_t count;      // number of uplinks
    std::uint32_t flags;      // kNode* bits
  };

  // One-entry memo for consecutive switches sharing the same fully
  // active upper slice (pod ToRs all sum the same aggs). Valid within a
  // single sweep: every counts[] entry is written at most once, before
  // any lower level reads it, so a recorded slice sum never goes stale.
  struct SliceMemo {
    std::uint32_t ubase = 0;
    std::uint32_t count = 0;
    std::uint64_t sum = 0;
    bool valid = false;
  };

  // Sum of counts[upper] over the node's uplinks that are enabled and
  // (when masked_words != nullptr) not masked; the word-level hot loop
  // shared by the full and incremental sweeps.
  [[nodiscard]] std::uint64_t node_sum(const SweepNode& node,
                                       const std::uint64_t* enabled_words,
                                       const std::uint64_t* masked_words,
                                       const std::uint64_t* counts,
                                       SliceMemo& memo) const;

  // Stamps the downward closure of the conducting masked links into
  // scratch (epoch-tagged) and returns the new epoch.
  std::uint64_t mark_masked_closure(std::span<const LinkId> masked_links,
                                    SweepScratch& scratch) const;

  const topology::Topology* topo_;
  std::vector<std::uint64_t> design_paths_;
  // CSR: uplinks grouped by lower-switch index.
  std::vector<std::uint32_t> up_offset_;  // switch_count + 1 entries
  std::vector<std::uint32_t> up_link_;    // link index per uplink
  std::vector<std::uint32_t> up_upper_;   // upper switch index per uplink
  std::vector<std::uint32_t> order_;      // level-descending switch indices
  std::size_t top_count_ = 0;
  std::vector<SweepNode> nodes_;          // non-top switches, sweep order
  // Inverted CSR for downward closures: lower endpoints of each switch's
  // downlinks (duplicates possible with parallel links; harmless).
  std::vector<std::uint32_t> down_offset_;  // switch_count + 1 entries
  std::vector<std::uint32_t> down_lower_;
};

// Exhaustive DFS path enumeration; exponential, for tests only.
[[nodiscard]] std::uint64_t count_paths_brute_force(
    const topology::Topology& topo, SwitchId from,
    const LinkMask* extra_off = nullptr);

}  // namespace corropt::core
