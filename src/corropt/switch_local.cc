#include "corropt/switch_local.h"

#include <cassert>

namespace corropt::core {

SwitchLocalChecker::SwitchLocalChecker(topology::Topology& topo, double sc)
    : topo_(&topo), sc_(sc) {
  assert(sc >= 0.0 && sc <= 1.0);
}

SwitchLocalChecker SwitchLocalChecker::for_capacity(
    topology::Topology& topo, double capacity_fraction) {
  const int tiers = topo.top_level();
  assert(tiers >= 1);
  return SwitchLocalChecker(
      topo, switch_local_threshold(capacity_fraction, tiers));
}

int SwitchLocalChecker::disable_budget(common::SwitchId sw) const {
  const auto m = static_cast<double>(topo_->switch_at(sw).uplinks.size());
  // floor(m * (1 - sc)) computed via the kept count to avoid the
  // floating-point hazard of 1 - sc (e.g. m=5, sc=0.6 must yield 2).
  const int keep = static_cast<int>(std::ceil(m * sc_ - 1e-9));
  return static_cast<int>(m) - keep;
}

bool SwitchLocalChecker::can_disable(common::LinkId link) const {
  if (!topo_->is_enabled(link)) return true;
  const common::SwitchId sw = topo_->link_at(link).lower;
  int disabled = 0;
  for (common::LinkId uplink : topo_->switch_at(sw).uplinks) {
    if (!topo_->is_enabled(uplink)) ++disabled;
  }
  return disabled < disable_budget(sw);
}

bool SwitchLocalChecker::try_disable(common::LinkId link) {
  if (!topo_->is_enabled(link)) return true;
  if (!can_disable(link)) return false;
  topo_->set_enabled(link, false);
  return true;
}

}  // namespace corropt::core
