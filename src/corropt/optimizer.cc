#include "corropt/optimizer.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <limits>
#include <utility>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace corropt::core {

namespace {
constexpr std::uint32_t kNoSlot = std::numeric_limits<std::uint32_t>::max();
}  // namespace

// Scratch for one segment solve. The segment's feasibility sweep is
// "compiled" once per solve: only switches whose path counts a candidate
// can change (an enabled uplink is a candidate, or leads to such a
// switch) are swept per subset; contributions of everything else are
// folded into per-switch baseline constants, and unaffected ToRs are
// checked once against the baseline. Per-subset work is then a single
// pass over flat edge arrays with zero allocation.
struct OptimizerSegmentScratch {
  struct Edge {
    // Baseline count of an unaffected upper endpoint (0 when affected).
    std::uint64_t base = 0;
    // Dense slot of an affected upper endpoint, or kNoSlot.
    std::uint32_t upper_slot = kNoSlot;
    // Candidate index of the uplink, or -1 for non-candidate links.
    std::int32_t cand = -1;
  };

  // Region discovery, indexed by switch.
  std::vector<char> in_region;
  std::vector<char> affected;
  std::vector<std::uint64_t> baseline;
  std::vector<std::uint32_t> slot_of;
  std::vector<std::uint32_t> frontier;
  // Candidate lookup, indexed by link.
  std::vector<std::int32_t> cand_of;
  // Compiled region: affected switches in level-descending order.
  std::vector<std::uint32_t> order;       // switch index per slot
  std::vector<std::uint32_t> edge_offset;  // slot count + 1 entries
  std::vector<Edge> edges;
  std::vector<std::uint64_t> const_base;  // fixed contribution per slot
  std::vector<std::uint64_t> required;    // min paths per slot (0 off ToRs)
  std::vector<std::uint64_t> counts;      // sweep output per slot
  // Search state.
  std::vector<double> link_penalty;
  std::vector<char> full_selected;
  std::vector<std::uint32_t> survivors;
  std::vector<std::uint32_t> pos_bit;  // candidate -> survivor-position bit
  std::vector<double> suffix;
  std::vector<std::uint32_t> accept_cache;
  std::vector<std::uint32_t> reject_cache;
};

struct OptimizerSegmentOutcome {
  // selected[i] != 0 -> disable segment.links[i].
  std::vector<char> selected;
  double penalty = 0.0;
  bool exact = true;
  std::size_t subsets_evaluated = 0;
  std::size_t cache_skips = 0;
  std::size_t accept_skips = 0;
  std::size_t bound_skips = 0;
  // Sweep-region link mask (every installed uplink of every in-region
  // switch); only filled when the solve was asked to capture it. A later
  // enabled-state change outside this mask cannot alter the segment's
  // feasibility sweeps, which is what makes cached solutions reusable.
  LinkMask region;
};

namespace {

// Feasibility of one subset over the compiled region. `selected(c)`
// answers whether candidate index c is in the subset. Level-descending
// slot order guarantees every affected upper is computed before it is
// read; ToR slots carry their requirement, so infeasibility exits early.
template <typename SelectedFn>
bool region_feasible(OptimizerSegmentScratch& s, SelectedFn&& selected) {
  const std::size_t slots = s.order.size();
  for (std::size_t k = 0; k < slots; ++k) {
    std::uint64_t total = s.const_base[k];
    const std::uint32_t begin = s.edge_offset[k];
    const std::uint32_t end = s.edge_offset[k + 1];
    for (std::uint32_t e = begin; e < end; ++e) {
      const OptimizerSegmentScratch::Edge& edge = s.edges[e];
      if (edge.cand >= 0 && selected(edge.cand)) continue;
      total += edge.upper_slot != kNoSlot ? s.counts[edge.upper_slot]
                                          : edge.base;
    }
    if (total < s.required[k]) return false;
    s.counts[k] = total;
  }
  return true;
}

}  // namespace

Optimizer::Optimizer(topology::Topology& topo,
                     const CapacityConstraint& constraint,
                     PenaltyFunction penalty, OptimizerConfig config)
    : topo_(&topo),
      constraint_(&constraint),
      penalty_(penalty),
      config_(config),
      paths_(topo),
      scratch_(std::make_unique<OptimizerSegmentScratch>()) {
  scratch_paths_.resize(topo.switch_count(), 0);
  scratch_mask_.assign(topo.link_count());
  refresh_baseline();
}

Optimizer::~Optimizer() = default;

void Optimizer::refresh_baseline() {
  if (baseline_version_ == topo_->state_version() &&
      !baseline_counts_.empty()) {
    return;
  }
  if (incremental_ && !baseline_counts_.empty() && !pending_changed_.empty()) {
    // Every effective enabled-state change since the baseline was taken
    // is in pending_changed_ (sync_incremental_state degrades to a cold
    // rebuild otherwise), so recounting the downward closure of those
    // links brings the counts to the current state exactly.
    paths_.refresh_counts_after_changes(baseline_counts_, pending_changed_,
                                        &touched_tors_, sweep_scratch_);
    merge_baseline_violated();
    ++inc_stats_.baseline_delta_recounts;
  } else {
    paths_.up_paths_into(baseline_counts_);
    baseline_violated_ = paths_.violated_tors(baseline_counts_, *constraint_);
    if (incremental_) ++inc_stats_.baseline_full_recounts;
  }
  pending_changed_.clear();
  baseline_version_ = topo_->state_version();
}

void Optimizer::merge_baseline_violated() {
  if (touched_tors_.empty()) return;
  // Both lists are id-sorted: baseline_violated_ by construction
  // (violated_tors / masked_violated_tors_into), touched_tors_ because
  // sweep nodes come in id order within the ToR level. Two-pointer merge
  // re-evaluating only the touched ToRs' verdicts.
  std::vector<SwitchId> merged;
  merged.reserve(baseline_violated_.size() + touched_tors_.size());
  std::size_t a = 0;
  std::size_t b = 0;
  while (a < baseline_violated_.size() || b < touched_tors_.size()) {
    if (b == touched_tors_.size() ||
        (a < baseline_violated_.size() &&
         baseline_violated_[a] < touched_tors_[b])) {
      merged.push_back(baseline_violated_[a++]);
      continue;
    }
    const SwitchId tor = touched_tors_[b++];
    if (a < baseline_violated_.size() && baseline_violated_[a] == tor) ++a;
    if (constraint_->below_min(tor, paths_.design_paths()[tor.index()],
                               baseline_counts_[tor.index()])) {
      merged.push_back(tor);
    }
  }
  baseline_violated_ = std::move(merged);
}

void Optimizer::drop_derived_state() {
  baseline_counts_.clear();
  baseline_violated_.clear();
  baseline_version_ = 0;
  pending_changed_.clear();
  drift_ = false;
  segment_cache_.clear();
  if (incremental_) tracked_version_ = topo_->state_version();
}

void Optimizer::set_incremental(bool enabled) {
  if (enabled == incremental_) return;
  incremental_ = enabled;
  pending_changed_.clear();
  drift_ = false;
  if (enabled) {
    tracked_version_ = topo_->state_version();
    if (closures_ == nullptr) {
      closures_ = std::make_unique<TorClosureCache>(paths_);
    }
  } else {
    segment_cache_.clear();
    closures_.reset();
  }
}

void Optimizer::note_links_changed(std::span<const LinkId> links) {
  if (!incremental_) return;
  const std::uint64_t version = topo_->state_version();
  // No version movement means no effective enabled-state change (a
  // corruption-rate-only change is caught by the per-candidate rate
  // comparison at reuse time, so it needs no invalidation here).
  if (version == tracked_version_) return;
  const std::uint64_t delta = version - tracked_version_;
  tracked_version_ = version;
  if (drift_) return;
  // Every effective enabled-state change bumps the version by exactly
  // one, and callers note each change they make. A version gap larger
  // than this note can account for means something changed behind our
  // back with no note — the pending list is incomplete, so fall cold.
  if (delta > links.size() ||
      pending_changed_.size() + links.size() > kMaxPendingChanges) {
    drift_ = true;  // Next run rebuilds from scratch.
    return;
  }
  pending_changed_.insert(pending_changed_.end(), links.begin(), links.end());
  for (auto& [key, entry] : segment_cache_) {
    if (!entry.fresh) continue;
    for (LinkId link : links) {
      if (entry.region.test(link.index())) {
        entry.fresh = false;
        break;
      }
    }
  }
}

void Optimizer::sync_incremental_state() {
  ++inc_stats_.runs;
  if (topo_->state_version() != tracked_version_) {
    // The topology changed behind our back (no note_links_changed):
    // the pending list is incomplete, so nothing cached can be trusted.
    drift_ = true;
    tracked_version_ = topo_->state_version();
  }
  if (drift_) {
    ++inc_stats_.cold_fallbacks;
    segment_cache_.clear();
    baseline_counts_.clear();  // Forces a full recount in refresh_baseline.
    pending_changed_.clear();
    drift_ = false;
  }
}

void Optimizer::compile_region(const Segment& segment,
                               OptimizerSegmentScratch& s) const {
  const std::size_t switches = topo_->switch_count();
  s.in_region.assign(switches, 0);
  s.affected.assign(switches, 0);
  s.baseline.assign(switches, 0);
  s.slot_of.assign(switches, kNoSlot);
  s.cand_of.assign(topo_->link_count(), -1);
  for (std::size_t i = 0; i < segment.links.size(); ++i) {
    s.cand_of[segment.links[i].index()] = static_cast<std::int32_t>(i);
  }

  // Upstream closure of the segment's ToRs over *installed* links: a
  // disabled link upstream of an endangered ToR still belongs to the
  // region, since re-enabling decisions may involve it.
  s.frontier.clear();
  for (SwitchId tor : segment.tors) {
    if (!s.in_region[tor.index()]) {
      s.in_region[tor.index()] = 1;
      s.frontier.push_back(static_cast<std::uint32_t>(tor.index()));
    }
  }
  while (!s.frontier.empty()) {
    const std::uint32_t current = s.frontier.back();
    s.frontier.pop_back();
    const PathCounter::UplinkSpan span = paths_.uplinks_of(current);
    for (std::size_t u = 0; u < span.count; ++u) {
      const std::uint32_t upper = span.upper[u];
      if (!s.in_region[upper]) {
        s.in_region[upper] = 1;
        s.frontier.push_back(upper);
      }
    }
  }

  // One level-descending pass computes baseline counts (current enabled
  // state, no candidate removed), affectedness, and the compiled edges.
  // The region is upward-closed, so every upper endpoint of a region
  // switch was processed before the switch itself.
  s.order.clear();
  s.edge_offset.clear();
  s.edges.clear();
  s.const_base.clear();
  s.required.clear();
  const common::DynamicBitset& enabled = topo_->enabled_mask();
  const std::span<const std::uint32_t> sweep = paths_.sweep_order();
  const std::size_t top_count = paths_.top_switch_count();
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const std::uint32_t sw = sweep[i];
    if (!s.in_region[sw]) continue;
    if (i < top_count) {
      s.baseline[sw] = 1;  // Top level: constant, never affected.
      continue;
    }
    const PathCounter::UplinkSpan span = paths_.uplinks_of(sw);
    std::uint64_t base_total = 0;
    bool affected = false;
    for (std::size_t u = 0; u < span.count; ++u) {
      if (!enabled.test(span.link[u])) continue;
      const std::uint32_t upper = span.upper[u];
      base_total += s.baseline[upper];
      if (s.cand_of[span.link[u]] >= 0 || s.affected[upper]) affected = true;
    }
    s.baseline[sw] = base_total;
    if (!affected) continue;
    s.affected[sw] = 1;
    s.slot_of[sw] = static_cast<std::uint32_t>(s.order.size());
    s.order.push_back(sw);
    s.edge_offset.push_back(static_cast<std::uint32_t>(s.edges.size()));
    std::uint64_t fixed = 0;
    for (std::size_t u = 0; u < span.count; ++u) {
      if (!enabled.test(span.link[u])) continue;
      const std::uint32_t upper = span.upper[u];
      const std::int32_t cand = s.cand_of[span.link[u]];
      if (cand < 0 && !s.affected[upper]) {
        fixed += s.baseline[upper];
        continue;
      }
      OptimizerSegmentScratch::Edge edge;
      edge.cand = cand;
      if (s.affected[upper]) {
        edge.upper_slot = s.slot_of[upper];
      } else {
        edge.base = s.baseline[upper];
      }
      s.edges.push_back(edge);
    }
    s.const_base.push_back(fixed);
    const topology::Switch& info = topo_->switches()[sw];
    s.required.push_back(
        info.level == 0
            ? constraint_->min_paths(info.id, paths_.design_paths()[sw])
            : 0);
  }
  s.edge_offset.push_back(static_cast<std::uint32_t>(s.edges.size()));
  s.counts.assign(s.order.size(), 0);
}

OptimizerSegmentOutcome Optimizer::solve_segment(
    const Segment& segment, const CorruptionSet& corruption,
    OptimizerSegmentScratch& s, const std::vector<char>* warm,
    bool capture_region) const {
  assert(!segment.links.empty());
  const std::size_t n = segment.links.size();
  OptimizerSegmentOutcome out;
  out.selected.assign(n, 0);

  compile_region(segment, s);
  if (capture_region) {
    // All installed uplinks of in-region switches: the exact dependence
    // set of every feasibility sweep this solve can run.
    out.region.assign(topo_->link_count());
    for (std::size_t sw = 0; sw < s.in_region.size(); ++sw) {
      if (!s.in_region[sw]) continue;
      const PathCounter::UplinkSpan span = paths_.uplinks_of(
          static_cast<std::uint32_t>(sw));
      for (std::size_t u = 0; u < span.count; ++u) {
        out.region.set(span.link[u]);
      }
    }
  }

  // Disabling links never adds paths, so a ToR already below its
  // requirement at baseline dooms every subset: return the empty
  // solution without enumerating anything.
  for (SwitchId tor : segment.tors) {
    const std::uint64_t required =
        constraint_->min_paths(tor, paths_.design_paths()[tor.index()]);
    if (s.baseline[tor.index()] < required) return out;
  }

  s.link_penalty.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    s.link_penalty[i] = penalty_(corruption.rate(segment.links[i]));
  }

  // Greedy fallback for over-budget segments (no bitmask: segments can
  // be arbitrarily wide here).
  if (n > config_.max_exact_segment || n >= 31) {
    std::vector<std::uint32_t> order(n);
    for (std::uint32_t i = 0; i < n; ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                if (s.link_penalty[a] != s.link_penalty[b]) {
                  return s.link_penalty[a] > s.link_penalty[b];
                }
                return a < b;
              });
    for (std::uint32_t i : order) {
      out.selected[i] = 1;
      ++out.subsets_evaluated;
      if (!region_feasible(s, [&](std::int32_t c) {
            return out.selected[c] != 0;
          })) {
        out.selected[i] = 0;
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (out.selected[i] != 0) out.penalty += s.link_penalty[i];
    }
    out.exact = false;
    CORROPT_LOG_WARNING << "optimizer: segment of " << n
                        << " links exceeded exact budget; greedy fallback";
    return out;
  }

  // Pre-filter: a candidate infeasible on its own can never be part of a
  // feasible subset (feasibility is monotone), so drop it outright.
  double best_penalty = 0.0;
  s.survivors.clear();
  for (std::size_t i = 0; i < n; ++i) {
    if (config_.prefilter_singletons) {
      ++out.subsets_evaluated;
      if (!region_feasible(s, [i](std::int32_t c) {
            return static_cast<std::size_t>(c) == i;
          })) {
        continue;
      }
      if (s.link_penalty[i] > best_penalty) {
        std::fill(out.selected.begin(), out.selected.end(), 0);
        out.selected[i] = 1;
        best_penalty = s.link_penalty[i];
      }
    }
    s.survivors.push_back(static_cast<std::uint32_t>(i));
  }
  if (s.survivors.empty()) {
    out.penalty = best_penalty;
    return out;
  }

  // Whole surviving set feasible? Most runs end here.
  s.full_selected.assign(n, 0);
  for (std::uint32_t i : s.survivors) s.full_selected[i] = 1;
  ++out.subsets_evaluated;
  if (region_feasible(s, [&](std::int32_t c) {
        return s.full_selected[c] != 0;
      })) {
    out.selected = s.full_selected;
    for (std::uint32_t i : s.survivors) out.penalty += s.link_penalty[i];
    return out;
  }

  // Branch-and-bound over survivor subsets: positions ordered by
  // descending penalty (ties by candidate index) so the include-first
  // DFS reaches high-value subsets early and the suffix-sum bound bites.
  // Masks fit in 32 bits: this path only runs for n <= 30.
  std::sort(s.survivors.begin(), s.survivors.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              if (s.link_penalty[a] != s.link_penalty[b]) {
                return s.link_penalty[a] > s.link_penalty[b];
              }
              return a < b;
            });
  const std::size_t m = s.survivors.size();
  s.pos_bit.assign(n, 0);
  s.suffix.assign(m + 1, 0.0);
  for (std::size_t j = m; j-- > 0;) {
    s.pos_bit[s.survivors[j]] = 1u << j;
    s.suffix[j] = s.suffix[j + 1] + s.link_penalty[s.survivors[j]];
  }

  s.accept_cache.clear();
  s.reject_cache.clear();
  if (config_.use_accept_cache && config_.prefilter_singletons) {
    // Every survivor was just proven feasible alone.
    for (std::size_t j = 0; j < m; ++j) s.accept_cache.push_back(1u << j);
  }
  if (config_.use_reject_cache) {
    // The full survivor set was just swept infeasible.
    s.reject_cache.push_back(
        m >= 32 ? ~0u : (1u << m) - 1);
  }

  // Feasibility of one mask via the caches, sweeping only on a miss.
  auto evaluate = [&](std::uint32_t mask) -> bool {
    if (config_.use_accept_cache) {
      for (std::uint32_t entry : s.accept_cache) {
        if ((mask & ~entry) == 0) {
          ++out.accept_skips;
          return true;
        }
      }
    }
    if (config_.use_reject_cache) {
      for (std::uint32_t entry : s.reject_cache) {
        if ((entry & ~mask) == 0) {
          ++out.cache_skips;
          return false;
        }
      }
    }
    ++out.subsets_evaluated;
    const bool ok = region_feasible(s, [&](std::int32_t c) {
      return (mask & s.pos_bit[c]) != 0;
    });
    if (ok) {
      if (config_.use_accept_cache) s.accept_cache.push_back(mask);
    } else if (config_.use_reject_cache) {
      s.reject_cache.push_back(mask);
    }
    return ok;
  };

  // Warm-start hint (incremental mode): a previous solution of this
  // segment, evaluated once so its verdict lands in the accept or reject
  // cache as a proven fact. Cache answers always equal what a sweep
  // would report (monotonicity both ways), so the DFS below makes
  // bit-identical decisions with or without the hint — only the number
  // of sweeps changes. Skipped if any hinted candidate failed the
  // singleton prefilter (the old solution cannot be feasible now) or the
  // hint is a singleton (already seeded above).
  if (warm != nullptr && warm->size() == n) {
    std::uint32_t hint = 0;
    bool usable = true;
    for (std::size_t i = 0; i < n; ++i) {
      if ((*warm)[i] == 0) continue;
      if (s.pos_bit[i] == 0) {
        usable = false;
        break;
      }
      hint |= s.pos_bit[i];
    }
    if (usable && std::popcount(hint) >= 2) evaluate(hint);
  }

  std::uint32_t best_mask = 0;
  bool best_from_dfs = false;
  // `mask` is the committed prefix over positions [0, j); `feasible`
  // tells whether it satisfies the region (always true when the reject
  // side is on — infeasible prefixes are pruned by monotonicity; with it
  // off, infeasible subtrees are descended and swept node by node, which
  // is exactly the ablation's "no monotonicity exploitation" contract).
  auto dfs = [&](auto&& self, std::size_t j, std::uint32_t mask, double pen,
                 bool feasible) -> void {
    if (feasible && pen > best_penalty) {
      best_penalty = pen;
      best_mask = mask;
      best_from_dfs = true;
    }
    if (j == m) return;
    if (config_.use_bound && pen + s.suffix[j] <= best_penalty) {
      ++out.bound_skips;
      return;
    }
    const std::uint32_t bit = 1u << j;
    const double p = s.link_penalty[s.survivors[j]];
    const bool child_ok = feasible ? evaluate(mask | bit) : false;
    if (child_ok) {
      self(self, j + 1, mask | bit, pen + p, true);
    } else if (config_.use_reject_cache) {
      // Monotone prune: every superset of an infeasible set is
      // infeasible; the whole include-subtree dies here.
      if (feasible) ++out.cache_skips;
      // (!feasible is unreachable: infeasible prefixes are never
      // descended when the reject side is on.)
    } else {
      if (!feasible) {
        // Parent already infeasible, but without the reject side we may
        // not assume monotonicity: sweep the child like any other.
        evaluate(mask | bit);
      }
      self(self, j + 1, mask | bit, pen + p, false);
    }
    self(self, j + 1, mask, pen, feasible);
  };
  dfs(dfs, 0, 0u, 0.0, true);

  if (best_from_dfs) {
    std::fill(out.selected.begin(), out.selected.end(), 0);
    for (std::size_t j = 0; j < m; ++j) {
      if ((best_mask >> j) & 1u) out.selected[s.survivors[j]] = 1;
    }
  }
  out.penalty = best_penalty;
  return out;
}

void Optimizer::set_sink(obs::Sink* sink) {
  sink_ = sink;
  if (sink == nullptr || sink->metrics == nullptr) {
    obs_runs_ = obs::Counter();
    obs_disabled_ = obs::Counter();
    obs_pruned_ = obs::Counter();
    obs_segments_ = obs::Counter();
    obs_subsets_ = obs::Counter();
    obs_cache_skips_ = obs::Counter();
    obs_accept_skips_ = obs::Counter();
    obs_bound_skips_ = obs::Counter();
    obs_disabled_per_run_ = obs::Histogram();
    obs_run_timer_ = obs::Histogram();
    return;
  }
  obs::MetricsRegistry& metrics = *sink->metrics;
  obs_runs_ = metrics.counter("optimizer.runs");
  obs_disabled_ = metrics.counter("optimizer.links_disabled");
  obs_pruned_ = metrics.counter("optimizer.pruned_safe_disables");
  obs_segments_ = metrics.counter("optimizer.segments");
  obs_subsets_ = metrics.counter("optimizer.subsets_evaluated");
  obs_cache_skips_ = metrics.counter("optimizer.cache_skips");
  obs_accept_skips_ = metrics.counter("optimizer.accept_skips");
  obs_bound_skips_ = metrics.counter("optimizer.bound_skips");
  obs_disabled_per_run_ = metrics.histogram(
      "optimizer.disabled_per_run", {0, 1, 2, 5, 10, 25, 50, 100, 250});
  obs_run_timer_ = metrics.timer("optimizer.run_s");
}

OptimizerResult Optimizer::run(const CorruptionSet& corruption) {
  const obs::ScopedTimer timer(obs_run_timer_,
                               sink_ != nullptr ? sink_->trace : nullptr,
                               "optimizer.run");
  OptimizerResult result = run_impl(corruption);
  // Recorded post-merge on the calling thread: deterministic for any
  // solver_threads (the timer above is wall clock and exempt).
  obs_runs_.add();
  obs_disabled_.add(result.disabled.size());
  obs_pruned_.add(result.pruned_safe_disables);
  obs_segments_.add(result.segments);
  obs_subsets_.add(result.subsets_evaluated);
  obs_cache_skips_.add(result.cache_skips);
  obs_accept_skips_.add(result.accept_skips);
  obs_bound_skips_.add(result.bound_skips);
  obs_disabled_per_run_.record(static_cast<double>(result.disabled.size()));
  return result;
}

OptimizerResult Optimizer::run_impl(const CorruptionSet& corruption) {
  if (incremental_) sync_incremental_state();
  OptimizerResult result;
  const std::vector<LinkId> candidates = corruption.active(*topo_);
  if (candidates.empty()) {
    result.remaining_penalty = 0.0;
    return result;
  }

  std::vector<LinkId> to_disable;
  std::vector<LinkId> contested = candidates;
  std::vector<SwitchId> endangered;

  if (config_.use_pruning) {
    // Hypothetically disable everything and see which ToRs complain. The
    // recount is incremental against cached unmasked counts: only the
    // downward closure of the candidates can change.
    refresh_baseline();
    scratch_mask_.assign(topo_->link_count());
    for (LinkId link : candidates) scratch_mask_.set(link.index());
    paths_.masked_violated_tors_into(endangered, baseline_counts_,
                                     baseline_violated_, scratch_mask_,
                                     candidates, *constraint_, scratch_paths_,
                                     sweep_scratch_);
    if (endangered.empty()) {
      // The full set is feasible: disable everything. `candidates` is
      // the id-sorted active set, so summing over it keeps the
      // floating-point fold order independent of the corruption map's
      // insert/erase history (checkpoint restores rebuild that map).
      for (LinkId link : candidates) {
        result.disabled_penalty += penalty_(corruption.rate(link));
      }
      for (LinkId link : candidates) topo_->set_enabled(link, false);
      result.disabled = candidates;
      result.remaining_penalty =
          corruption.total_active_penalty(*topo_, penalty_);
      note_links_changed(result.disabled);
      return result;
    }
    // Links not upstream of any endangered ToR are safe. In incremental
    // mode the union of memoized per-ToR closures is the same mask.
    if (incremental_) {
      scratch_mask_.assign(topo_->link_count());
      for (SwitchId tor : endangered) {
        scratch_mask_ |= closures_->closure(tor);
      }
    } else {
      paths_.upstream_links_into(scratch_mask_, scratch_visited_, endangered);
    }
    contested.clear();
    for (LinkId link : candidates) {
      if (scratch_mask_.test(link.index())) {
        contested.push_back(link);
      } else {
        to_disable.push_back(link);
        ++result.pruned_safe_disables;
      }
    }
  } else {
    endangered = topo_->tors();
  }

  std::vector<Segment> segments;
  if (config_.use_segmentation) {
    segments = segment_candidates(paths_, contested, endangered,
                                  incremental_ ? closures_.get() : nullptr);
  } else if (!contested.empty()) {
    Segment all;
    all.links = contested;
    all.tors = endangered;
    segments.push_back(std::move(all));
  }
  result.segments = segments.size();

  // Disable the safe links before solving segments so their (absent)
  // contribution to path counts is reflected in feasibility sweeps.
  for (LinkId link : to_disable) topo_->set_enabled(link, false);

  // Incremental reuse: a cached solution answers a segment outright when
  // its candidates, ToRs, and rates are identical and no noted change
  // touched its sweep region since it was solved. A content-identical
  // but stale (or rate-shifted) entry instead warm-starts the solve.
  // Warm pointers reference live cache entries; the cache is not mutated
  // until after the (possibly parallel) solves complete.
  std::vector<OptimizerSegmentOutcome> outcomes(segments.size());
  std::vector<const std::vector<char>*> warm(segments.size(), nullptr);
  std::vector<char> reused(segments.size(), 0);
  if (incremental_) {
    for (std::size_t i = 0; i < segments.size(); ++i) {
      const Segment& segment = segments[i];
      const auto it = segment_cache_.find(
          static_cast<std::uint32_t>(segment.links.front().index()));
      if (it == segment_cache_.end()) continue;
      const CachedSegment& entry = it->second;
      if (entry.links != segment.links || entry.tors != segment.tors) continue;
      bool rates_match = true;
      for (std::size_t k = 0; k < segment.links.size(); ++k) {
        if (entry.rates[k] != corruption.rate(segment.links[k])) {
          rates_match = false;
          break;
        }
      }
      if (entry.fresh && rates_match) {
        outcomes[i].selected = entry.selected;
        outcomes[i].penalty = entry.penalty;
        outcomes[i].exact = entry.exact;
        reused[i] = 1;
        ++result.segment_reuses;
        ++inc_stats_.segment_reuses;
      } else {
        warm[i] = &entry.selected;
        ++inc_stats_.warm_hints;
      }
    }
  }

  // Solve segments against the shared pre-segment state; candidates of
  // one segment never enter another segment's sweep region (segmentation
  // would have merged them), so deferring the set_enabled calls keeps
  // this bit-identical to the serial schedule for any thread count.
  const std::size_t workers = std::min(
      std::max<std::size_t>(config_.solver_threads, 1), segments.size());
  if (workers > 1) {
    common::ThreadPool pool(workers);
    common::parallel_for_each(pool, segments.size(), [&](std::size_t i) {
      if (reused[i] != 0) return;
      OptimizerSegmentScratch scratch;
      outcomes[i] =
          solve_segment(segments[i], corruption, scratch, warm[i],
                        incremental_);
    });
  } else {
    for (std::size_t i = 0; i < segments.size(); ++i) {
      if (reused[i] != 0) continue;
      outcomes[i] =
          solve_segment(segments[i], corruption, *scratch_, warm[i],
                        incremental_);
    }
  }
  if (incremental_) {
    inc_stats_.segment_solves += segments.size() - result.segment_reuses;
  }

  for (std::size_t i = 0; i < segments.size(); ++i) {
    const Segment& segment = segments[i];
    const OptimizerSegmentOutcome& outcome = outcomes[i];
    result.exact = result.exact && outcome.exact;
    result.subsets_evaluated += outcome.subsets_evaluated;
    result.cache_skips += outcome.cache_skips;
    result.accept_skips += outcome.accept_skips;
    result.bound_skips += outcome.bound_skips;
    for (std::size_t k = 0; k < segment.links.size(); ++k) {
      if (outcome.selected[k] != 0) {
        topo_->set_enabled(segment.links[k], false);
        to_disable.push_back(segment.links[k]);
      }
    }
  }

  // Persist the freshly solved segments for the next run, then note our
  // own disables: the baseline delta-recount needs them pending, and any
  // cache entry whose region they touch (including ones just stored that
  // selected a link) must go stale — its pre-disable state is gone.
  if (incremental_) {
    for (std::size_t i = 0; i < segments.size(); ++i) {
      if (reused[i] != 0) continue;
      const Segment& segment = segments[i];
      const OptimizerSegmentOutcome& outcome = outcomes[i];
      CachedSegment& entry = segment_cache_[
          static_cast<std::uint32_t>(segment.links.front().index())];
      entry.links = segment.links;
      entry.tors = segment.tors;
      entry.rates.resize(segment.links.size());
      for (std::size_t k = 0; k < segment.links.size(); ++k) {
        entry.rates[k] = corruption.rate(segment.links[k]);
      }
      entry.region = outcome.region;
      entry.selected = outcome.selected;
      entry.penalty = outcome.penalty;
      entry.exact = outcome.exact;
      entry.fresh = true;
    }
  }

  result.disabled = std::move(to_disable);
  for (LinkId link : result.disabled) {
    result.disabled_penalty += penalty_(corruption.rate(link));
  }
  result.remaining_penalty = corruption.total_active_penalty(*topo_, penalty_);
  note_links_changed(result.disabled);
  return result;
}

}  // namespace corropt::core
