#include "corropt/optimizer.h"

#include <algorithm>
#include <cassert>

#include "common/logging.h"

namespace corropt::core {

// Upstream closure of one segment's endangered ToRs, prepared for fast
// repeated sweeps: switches ordered top level first so that each sweep is
// a single pass.
struct Optimizer::Region {
  std::vector<SwitchId> sweep_order;
  std::vector<SwitchId> tors;
};

Optimizer::Optimizer(topology::Topology& topo,
                     const CapacityConstraint& constraint,
                     PenaltyFunction penalty, OptimizerConfig config)
    : topo_(&topo),
      constraint_(&constraint),
      penalty_(penalty),
      config_(config),
      paths_(topo) {
  scratch_paths_.resize(topo.switch_count(), 0);
  scratch_off_.assign(topo.link_count(), 0);
}

bool Optimizer::region_feasible(const Region& region, const Segment& segment,
                                const std::vector<char>& selected) {
  // Mark selected candidates as off.
  for (std::size_t i = 0; i < segment.links.size(); ++i) {
    if (selected[i] != 0) scratch_off_[segment.links[i].index()] = 1;
  }

  const int top = topo_->top_level();
  for (SwitchId id : region.sweep_order) {
    const topology::Switch& sw = topo_->switch_at(id);
    if (sw.level == top) {
      scratch_paths_[id.index()] = 1;
      continue;
    }
    std::uint64_t total = 0;
    for (LinkId uplink : sw.uplinks) {
      if (!topo_->is_enabled(uplink)) continue;
      if (scratch_off_[uplink.index()] != 0) continue;
      total += scratch_paths_[topo_->link_at(uplink).upper.index()];
    }
    scratch_paths_[id.index()] = total;
  }

  bool ok = true;
  for (SwitchId tor : region.tors) {
    const std::uint64_t required =
        constraint_->min_paths(tor, paths_.design_paths()[tor.index()]);
    if (scratch_paths_[tor.index()] < required) {
      ok = false;
      break;
    }
  }

  for (std::size_t i = 0; i < segment.links.size(); ++i) {
    if (selected[i] != 0) scratch_off_[segment.links[i].index()] = 0;
  }
  return ok;
}

Optimizer::SegmentSolution Optimizer::solve_segment(
    const Segment& segment, const CorruptionSet& corruption,
    OptimizerResult& result) {
  assert(!segment.links.empty());
  const std::size_t n = segment.links.size();

  // Build the sweep region for this segment's ToRs.
  Region region;
  region.tors = segment.tors;
  {
    std::vector<char> visited(topo_->switch_count(), 0);
    std::vector<SwitchId> frontier(segment.tors.begin(), segment.tors.end());
    for (SwitchId id : frontier) visited[id.index()] = 1;
    std::vector<SwitchId> members = frontier;
    while (!frontier.empty()) {
      const SwitchId current = frontier.back();
      frontier.pop_back();
      for (LinkId uplink : topo_->switch_at(current).uplinks) {
        const SwitchId upper = topo_->link_at(uplink).upper;
        if (!visited[upper.index()]) {
          visited[upper.index()] = 1;
          frontier.push_back(upper);
          members.push_back(upper);
        }
      }
    }
    std::sort(members.begin(), members.end(),
              [this](SwitchId a, SwitchId b) {
                return topo_->switch_at(a).level > topo_->switch_at(b).level;
              });
    region.sweep_order = std::move(members);
  }

  std::vector<double> link_penalty(n);
  for (std::size_t i = 0; i < n; ++i) {
    link_penalty[i] = penalty_(corruption.rate(segment.links[i]));
  }
  auto to_selected = [n](std::uint32_t mask) {
    std::vector<char> selected(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      if ((mask >> i) & 1u) selected[i] = 1;
    }
    return selected;
  };
  auto selected_penalty = [&](const std::vector<char>& selected) {
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (selected[i] != 0) total += link_penalty[i];
    }
    return total;
  };

  // Greedy fallback for over-budget segments (no bitmask: segments can
  // be arbitrarily wide here).
  if (n > config_.max_exact_segment || n >= 31) {
    std::vector<std::size_t> order(n);
    for (std::size_t i = 0; i < n; ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return link_penalty[a] > link_penalty[b];
    });
    std::vector<char> selected(n, 0);
    for (std::size_t i : order) {
      selected[i] = 1;
      ++result.subsets_evaluated;
      if (!region_feasible(region, segment, selected)) selected[i] = 0;
    }
    CORROPT_LOG_WARNING << "optimizer: segment of " << n
                        << " links exceeded exact budget; greedy fallback";
    return {selected, selected_penalty(selected), /*exact=*/false};
  }

  // Pre-filter: a candidate infeasible on its own can never be part of a
  // feasible subset (feasibility is monotone), so drop it outright.
  std::vector<std::size_t> survivors;
  SegmentSolution best;
  best.selected.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    if (config_.prefilter_singletons) {
      ++result.subsets_evaluated;
      const std::vector<char> single =
          to_selected(static_cast<std::uint32_t>(1u << i));
      if (!region_feasible(region, segment, single)) continue;
      if (link_penalty[i] > best.penalty) {
        best = {single, link_penalty[i], true};
      }
    }
    survivors.push_back(i);
  }
  if (survivors.empty()) return best;

  // Whole surviving set feasible? Most runs end here.
  std::uint32_t full = 0;
  for (std::size_t i : survivors) full |= 1u << i;
  ++result.subsets_evaluated;
  {
    const std::vector<char> all = to_selected(full);
    if (region_feasible(region, segment, all)) {
      return {all, selected_penalty(all), true};
    }
  }

  // Exact enumeration over survivor subsets in increasing size with a
  // reject cache of minimal infeasible subsets. Because sizes ascend,
  // any infeasible subset that was not skipped is minimal. Masks fit in
  // 32 bits: the exact path only runs for n <= min(max_exact_segment, 30).
  std::vector<std::uint32_t> reject_cache;
  const std::size_t m = survivors.size();
  // Iterate subsets of the survivor index space via Gosper's hack.
  for (std::size_t size = config_.prefilter_singletons ? 2 : 1; size < m;
       ++size) {
    std::uint32_t subset = (1u << size) - 1;
    const std::uint32_t limit = 1u << m;
    while (subset < limit) {
      // Expand survivor-space subset into link-space mask.
      std::uint32_t mask = 0;
      for (std::size_t j = 0; j < m; ++j) {
        if ((subset >> j) & 1u) mask |= 1u << survivors[j];
      }
      bool skipped = false;
      if (config_.use_reject_cache) {
        for (std::uint32_t rejected : reject_cache) {
          if ((mask & rejected) == rejected) {
            ++result.cache_skips;
            skipped = true;
            break;
          }
        }
      }
      if (!skipped) {
        ++result.subsets_evaluated;
        const std::vector<char> selected = to_selected(mask);
        if (region_feasible(region, segment, selected)) {
          const double p = selected_penalty(selected);
          if (p > best.penalty) best = {selected, p, true};
        } else if (config_.use_reject_cache) {
          reject_cache.push_back(mask);
        }
      }
      // Gosper's hack: next subset of the same popcount.
      const std::uint32_t c = subset & (~subset + 1);
      const std::uint32_t r = subset + c;
      subset = (((r ^ subset) >> 2) / c) | r;
    }
  }
  return best;
}

OptimizerResult Optimizer::run(const CorruptionSet& corruption) {
  OptimizerResult result;
  const std::vector<LinkId> candidates = corruption.active(*topo_);
  if (candidates.empty()) {
    result.remaining_penalty = 0.0;
    return result;
  }

  std::vector<LinkId> to_disable;
  std::vector<LinkId> contested = candidates;
  std::vector<SwitchId> endangered;

  if (config_.use_pruning) {
    // Hypothetically disable everything and see which ToRs complain.
    LinkMask all_off(topo_->link_count(), 0);
    for (LinkId link : candidates) all_off[link.index()] = 1;
    const std::vector<std::uint64_t> counts = paths_.up_paths(&all_off);
    endangered = paths_.violated_tors(counts, *constraint_);
    if (endangered.empty()) {
      // The full set is feasible: disable everything.
      for (LinkId link : candidates) topo_->set_enabled(link, false);
      result.disabled = candidates;
      for (LinkId link : candidates) {
        result.disabled_penalty += penalty_(corruption.rate(link));
      }
      result.remaining_penalty =
          corruption.total_active_penalty(*topo_, penalty_);
      return result;
    }
    // Links not upstream of any endangered ToR are safe.
    const LinkMask upstream = paths_.upstream_links(endangered);
    contested.clear();
    for (LinkId link : candidates) {
      if (upstream[link.index()] != 0) {
        contested.push_back(link);
      } else {
        to_disable.push_back(link);
        ++result.pruned_safe_disables;
      }
    }
  } else {
    endangered = topo_->tors();
  }

  std::vector<Segment> segments;
  if (config_.use_segmentation) {
    segments = segment_candidates(paths_, contested, endangered);
  } else if (!contested.empty()) {
    Segment all;
    all.links = contested;
    all.tors = endangered;
    segments.push_back(std::move(all));
  }
  result.segments = segments.size();

  // Disable the safe links before solving segments so their (absent)
  // contribution to path counts is reflected in feasibility sweeps.
  for (LinkId link : to_disable) topo_->set_enabled(link, false);

  for (const Segment& segment : segments) {
    const SegmentSolution solution =
        solve_segment(segment, corruption, result);
    result.exact = result.exact && solution.exact;
    for (std::size_t i = 0; i < segment.links.size(); ++i) {
      if (solution.selected[i] != 0) {
        topo_->set_enabled(segment.links[i], false);
        to_disable.push_back(segment.links[i]);
      }
    }
  }

  result.disabled = std::move(to_disable);
  for (LinkId link : result.disabled) {
    result.disabled_penalty += penalty_(corruption.rate(link));
  }
  result.remaining_penalty = corruption.total_active_penalty(*topo_, penalty_);
  return result;
}

}  // namespace corropt::core
