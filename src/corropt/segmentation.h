// Topology segmentation (Section 8, "Speeding optimizer").
//
// Corrupting links can be partitioned into segments whose disabling
// decisions are independent: two candidate links interact only when some
// capacity-endangered ToR has both on its upward paths. Solving each
// segment separately shrinks the optimizer's exponential search space
// from 2^|R| to a sum of much smaller powers.
#pragma once

#include <span>
#include <vector>

#include "common/ids.h"
#include "corropt/path_counter.h"

namespace corropt::core {

struct Segment {
  // Candidate corrupting links whose decisions are coupled.
  std::vector<LinkId> links;
  // Capacity-endangered ToRs whose constraints involve those links.
  std::vector<SwitchId> tors;
};

// Lazily memoized per-ToR upstream closure masks. A ToR's closure
// follows *installed* links regardless of enabled state (see
// PathCounter::upstream_links_into), so a built mask never goes stale:
// the cache is valid for the lifetime of the topology's structure. The
// incremental optimizer (DESIGN.md §12) keeps one across runs so the
// per-endangered-ToR closure walks of segmentation and pruning become
// lookups after the first event that touches a ToR.
class TorClosureCache {
 public:
  explicit TorClosureCache(const PathCounter& paths) : paths_(&paths) {}

  // The upstream link mask of `tor` (== paths.upstream_links({tor})).
  [[nodiscard]] const LinkMask& closure(SwitchId tor) {
    if (masks_.empty()) masks_.resize(paths_->topo().switch_count());
    LinkMask& mask = masks_[tor.index()];
    if (mask.empty()) {
      paths_->upstream_links_into(mask, visited_scratch_, {&tor, 1});
    }
    return mask;
  }

 private:
  const PathCounter* paths_;
  std::vector<LinkMask> masks_;  // Indexed by switch; empty = not built.
  std::vector<char> visited_scratch_;
};

// Partitions `candidates` into independent segments with respect to the
// given endangered ToRs. ToRs with no candidate upstream are dropped
// (their violation, if any, cannot be influenced by the candidates).
// Candidates upstream of no endangered ToR are also dropped — they are
// the "safe to disable" links the optimizer's pruning already handles.
// `closures`, when non-null, memoizes the per-ToR upstream masks across
// calls; the result is identical either way.
[[nodiscard]] std::vector<Segment> segment_candidates(
    const PathCounter& paths, std::span<const LinkId> candidates,
    std::span<const SwitchId> endangered_tors,
    TorClosureCache* closures = nullptr);

}  // namespace corropt::core
