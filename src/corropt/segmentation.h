// Topology segmentation (Section 8, "Speeding optimizer").
//
// Corrupting links can be partitioned into segments whose disabling
// decisions are independent: two candidate links interact only when some
// capacity-endangered ToR has both on its upward paths. Solving each
// segment separately shrinks the optimizer's exponential search space
// from 2^|R| to a sum of much smaller powers.
#pragma once

#include <span>
#include <vector>

#include "common/ids.h"
#include "corropt/path_counter.h"

namespace corropt::core {

struct Segment {
  // Candidate corrupting links whose decisions are coupled.
  std::vector<LinkId> links;
  // Capacity-endangered ToRs whose constraints involve those links.
  std::vector<SwitchId> tors;
};

// Partitions `candidates` into independent segments with respect to the
// given endangered ToRs. ToRs with no candidate upstream are dropped
// (their violation, if any, cannot be influenced by the candidates).
// Candidates upstream of no endangered ToR are also dropped — they are
// the "safe to disable" links the optimizer's pruning already handles.
[[nodiscard]] std::vector<Segment> segment_candidates(
    const PathCounter& paths, std::span<const LinkId> candidates,
    std::span<const SwitchId> endangered_tors);

}  // namespace corropt::core
