#include "corropt/capacity.h"

#include <cassert>

namespace corropt::core {

CapacityConstraint::CapacityConstraint(double uniform_fraction)
    : default_fraction_(uniform_fraction) {
  assert(uniform_fraction >= 0.0 && uniform_fraction <= 1.0);
}

void CapacityConstraint::set_tor_fraction(SwitchId tor, double fraction) {
  assert(fraction >= 0.0 && fraction <= 1.0);
  overrides_[tor] = fraction;
}

double CapacityConstraint::override_or_default(SwitchId tor) const {
  const auto it = overrides_.find(tor);
  return it == overrides_.end() ? default_fraction_ : it->second;
}

}  // namespace corropt::core
