// Per-ToR capacity constraints.
//
// The capacity metric is the fraction of valley-free paths from a ToR to
// the spine that remain available after links are disabled (Section 5.1).
// Because traffic demand differs across ToRs, thresholds are per-ToR with
// a uniform default. The denominator is the topology's design path count
// (all installed links), so repeated disabling cannot silently erode the
// baseline.
#pragma once

#include <cmath>
#include <cstdint>
#include <unordered_map>

#include "common/ids.h"

namespace corropt::core {

using common::SwitchId;

class CapacityConstraint {
 public:
  // Uniform constraint c in [0, 1] for every ToR.
  explicit CapacityConstraint(double uniform_fraction = 0.75);

  [[nodiscard]] double default_fraction() const { return default_fraction_; }

  // Overrides the threshold for one ToR (hot racks get more headroom).
  void set_tor_fraction(SwitchId tor, double fraction);

  [[nodiscard]] double fraction(SwitchId tor) const {
    if (overrides_.empty()) return default_fraction_;  // Hot path: no lookup.
    return override_or_default(tor);
  }

  // Minimum number of available paths the ToR must keep, given its design
  // path count: the smallest integer >= c * design (with a tolerance so
  // exact fractions like 0.6 * 25 = 15 do not round up to 16).
  [[nodiscard]] std::uint64_t min_paths(SwitchId tor,
                                        std::uint64_t design_paths) const {
    const double required =
        fraction(tor) * static_cast<double>(design_paths);
    return static_cast<std::uint64_t>(std::ceil(required - 1e-9));
  }

  // Equivalent to `available < min_paths(tor, design_paths)` without the
  // ceil call (for an integer a and real x, a < ceil(x) iff a < x); used
  // by the per-ToR hot loops in feasibility sweeps.
  [[nodiscard]] bool below_min(SwitchId tor, std::uint64_t design_paths,
                               std::uint64_t available) const {
    return static_cast<double>(available) <
           fraction(tor) * static_cast<double>(design_paths) - 1e-9;
  }

 private:
  [[nodiscard]] double override_or_default(SwitchId tor) const;

  double default_fraction_;
  std::unordered_map<SwitchId, double> overrides_;
};

}  // namespace corropt::core
