#include "corropt/routing.h"

#include <algorithm>
#include <cassert>

namespace corropt::core {

namespace {

// Propagates one unit of upward traffic from every ToR through the given
// per-switch uplink shares; returns per-link traffic.
std::vector<double> propagate(const topology::Topology& topo,
                              const WcmpTable& table) {
  std::vector<double> switch_traffic(topo.switch_count(), 0.0);
  std::vector<double> link_traffic(topo.link_count(), 0.0);
  for (common::SwitchId tor : topo.tors()) {
    switch_traffic[tor.index()] = 1.0;
  }
  for (int level = 0; level < topo.top_level(); ++level) {
    for (common::SwitchId id : topo.switches_at_level(level)) {
      const double traffic = switch_traffic[id.index()];
      if (traffic == 0.0) continue;
      for (const UplinkWeight& uplink : table.weights[id.index()]) {
        const double share = traffic * uplink.weight;
        link_traffic[uplink.link.index()] += share;
        switch_traffic[topo.link_at(uplink.link).upper.index()] += share;
      }
    }
  }
  return link_traffic;
}

// Uniform shares over every *installed* link: the intact-ECMP baseline.
WcmpTable intact_uniform_table(const topology::Topology& topo) {
  WcmpTable table;
  table.weights.resize(topo.switch_count());
  for (const topology::Switch& sw : topo.switches()) {
    if (sw.uplinks.empty()) continue;
    const double share = 1.0 / static_cast<double>(sw.uplinks.size());
    for (common::LinkId link : sw.uplinks) {
      table.weights[sw.id.index()].push_back({link, share});
    }
  }
  return table;
}

}  // namespace

double WcmpTable::share(const topology::Topology& topo,
                        common::LinkId link) const {
  const common::SwitchId lower = topo.link_at(link).lower;
  for (const UplinkWeight& uplink : weights[lower.index()]) {
    if (uplink.link == link) return uplink.weight;
  }
  return 0.0;
}

WcmpTable compute_wcmp(const topology::Topology& topo,
                       const PathCounter& paths) {
  const std::vector<std::uint64_t> counts = paths.up_paths();
  WcmpTable table;
  table.weights.resize(topo.switch_count());
  for (const topology::Switch& sw : topo.switches()) {
    if (sw.level == topo.top_level()) continue;
    const double total = static_cast<double>(counts[sw.id.index()]);
    if (total == 0.0) continue;  // No upward path: nothing to weight.
    auto& row = table.weights[sw.id.index()];
    for (common::LinkId link : sw.uplinks) {
      if (!topo.is_enabled(link)) continue;
      const double through =
          static_cast<double>(counts[topo.link_at(link).upper.index()]);
      if (through == 0.0) continue;  // Dead-end uplink carries nothing.
      row.push_back({link, through / total});
    }
  }
  return table;
}

std::vector<double> compute_link_traffic(const topology::Topology& topo,
                                         const WcmpTable& table) {
  return propagate(topo, table);
}

double max_link_overload(const topology::Topology& topo,
                         const WcmpTable& table) {
  const std::vector<double> degraded = propagate(topo, table);
  const std::vector<double> baseline =
      propagate(topo, intact_uniform_table(topo));
  double worst = 0.0;
  for (std::size_t i = 0; i < degraded.size(); ++i) {
    if (baseline[i] <= 0.0) continue;
    worst = std::max(worst, degraded[i] / baseline[i]);
  }
  return worst;
}

}  // namespace corropt::core
