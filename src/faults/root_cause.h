// Root causes of packet corruption (Section 4, Table 2).
#pragma once

#include <array>
#include <string_view>

namespace corropt::faults {

enum class RootCause {
  // Dirt/oil/scratches on a connector; lowers RxPower on one direction.
  kConnectorContamination,
  // Bent or physically damaged fiber; lowers RxPower on both directions.
  kDamagedFiber,
  // Aging laser; TxPower on the send side low or gradually decreasing.
  kDecayingTransmitter,
  // Bad or loosely seated transceiver; powers look healthy.
  kBadOrLooseTransceiver,
  // Faulty breakout cable or switch backplane; several co-located links
  // corrupt simultaneously with good power and similar loss rates.
  kSharedComponent,
};

inline constexpr std::array<RootCause, 5> kAllRootCauses = {
    RootCause::kConnectorContamination, RootCause::kDamagedFiber,
    RootCause::kDecayingTransmitter, RootCause::kBadOrLooseTransceiver,
    RootCause::kSharedComponent};

[[nodiscard]] constexpr std::string_view to_string(RootCause cause) {
  switch (cause) {
    case RootCause::kConnectorContamination:
      return "connector-contamination";
    case RootCause::kDamagedFiber:
      return "damaged-fiber";
    case RootCause::kDecayingTransmitter:
      return "decaying-transmitter";
    case RootCause::kBadOrLooseTransceiver:
      return "bad-or-loose-transceiver";
    case RootCause::kSharedComponent:
      return "shared-component";
  }
  return "unknown";
}

}  // namespace corropt::faults
