#include "faults/injector.h"

#include <algorithm>
#include <cassert>

#include "common/time.h"

namespace corropt::faults {

FaultInjector::FaultInjector(telemetry::NetworkState& state)
    : state_(&state) {}

FaultId FaultInjector::inject(Fault fault) {
  const FaultId id(next_id_++);
  fault.id = id;
  for (const DirectionEffect& effect : fault.effects) {
    by_direction_[effect.direction].push_back(id);
  }
  const auto [it, inserted] = active_.emplace(id, std::move(fault));
  assert(inserted);
  for (const DirectionEffect& effect : it->second.effects) {
    rebuild_direction(effect.direction);
  }
  return id;
}

void FaultInjector::clear(FaultId id) {
  const auto it = active_.find(id);
  if (it == active_.end()) return;
  const Fault fault = std::move(it->second);
  active_.erase(it);
  for (const DirectionEffect& effect : fault.effects) {
    auto& ids = by_direction_[effect.direction];
    ids.erase(std::remove(ids.begin(), ids.end(), id), ids.end());
    if (ids.empty()) by_direction_.erase(effect.direction);
    rebuild_direction(effect.direction);
  }
}

bool FaultInjector::try_repair(FaultId id, RepairAction action) {
  const auto it = active_.find(id);
  if (it == active_.end()) return true;  // Already gone; repair succeeds.
  if (!it->second.fixed_by(action)) return false;
  clear(id);
  return true;
}

void FaultInjector::advance(common::SimTime now) {
  assert(now >= now_);
  now_ = now;
  for (const auto& [id, fault] : active_) {
    for (const DirectionEffect& effect : fault.effects) {
      if (effect.tx_decay_db_per_day != 0.0) {
        rebuild_direction(effect.direction);
      }
    }
  }
}

const Fault* FaultInjector::fault(FaultId id) const {
  const auto it = active_.find(id);
  return it == active_.end() ? nullptr : &it->second;
}

std::vector<FaultId> FaultInjector::faults_on_link(LinkId link) const {
  std::vector<FaultId> out;
  for (const auto& [id, fault] : active_) {
    if (std::find(fault.links.begin(), fault.links.end(), link) !=
        fault.links.end()) {
      out.push_back(id);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<const Fault*> FaultInjector::active_faults() const {
  std::vector<const Fault*> out;
  out.reserve(active_.size());
  for (const auto& [id, fault] : active_) out.push_back(&fault);
  std::sort(out.begin(), out.end(),
            [](const Fault* a, const Fault* b) { return a->id < b->id; });
  return out;
}

void FaultInjector::snapshot_to(common::snap::Writer& w) const {
  w.section(common::snap::tag('F', 'L', 'T', 'S'), 1);
  w.u64(active_.size());
  for (const Fault* fault : active_faults()) {
    w.u32(fault->id.value());
    w.u8(static_cast<std::uint8_t>(fault->cause));
    w.u64(fault->links.size());
    for (LinkId link : fault->links) w.u32(link.value());
    w.u64(fault->effects.size());
    for (const DirectionEffect& e : fault->effects) {
      w.u32(e.direction.value());
      w.f64(e.extra_attenuation_db);
      w.f64(e.tx_power_delta_db);
      w.f64(e.tx_decay_db_per_day);
      w.f64(e.corruption_rate);
    }
    w.u64(fault->fixing_actions.size());
    for (RepairAction action : fault->fixing_actions) {
      w.u8(static_cast<std::uint8_t>(action));
    }
    w.i64(fault->onset);
  }
  w.u64(next_id_);
  w.i64(now_);
}

void FaultInjector::restore_from(common::snap::Reader& r) {
  r.expect_section(common::snap::tag('F', 'L', 'T', 'S'));
  active_.clear();
  by_direction_.clear();
  const std::uint64_t count = r.u64();
  for (std::uint64_t i = 0; i < count; ++i) {
    Fault fault;
    fault.id = FaultId(r.u32());
    fault.cause = static_cast<RootCause>(r.u8());
    fault.links.resize(r.u64());
    for (LinkId& link : fault.links) link = LinkId(r.u32());
    fault.effects.resize(r.u64());
    for (DirectionEffect& e : fault.effects) {
      e.direction = DirectionId(r.u32());
      e.extra_attenuation_db = r.f64();
      e.tx_power_delta_db = r.f64();
      e.tx_decay_db_per_day = r.f64();
      e.corruption_rate = r.f64();
    }
    fault.fixing_actions.resize(r.u64());
    for (RepairAction& action : fault.fixing_actions) {
      action = static_cast<RepairAction>(r.u8());
    }
    fault.onset = r.i64();
    // Faults arrive in id order, which is injection order, so the
    // rebuilt per-direction lists match the live ones exactly.
    for (const DirectionEffect& e : fault.effects) {
      by_direction_[e.direction].push_back(fault.id);
    }
    active_.emplace(fault.id, std::move(fault));
  }
  next_id_ = static_cast<common::FaultId::underlying_type>(r.u64());
  now_ = r.i64();
  // NetworkState restores the physical arrays bit-exactly itself; no
  // rebuild_direction here (a recompute could round differently).
}

void FaultInjector::rebuild_direction(DirectionId dir) {
  auto d = state_->direction(dir);
  d.tx_power_dbm = state_->tech().nominal_tx_dbm;
  d.extra_attenuation_db = 0.0;
  double survival = 1.0;  // P(packet survives every active fault).

  const auto it = by_direction_.find(dir);
  if (it != by_direction_.end()) {
    for (FaultId id : it->second) {
      const Fault& fault = active_.at(id);
      for (const DirectionEffect& effect : fault.effects) {
        if (effect.direction != dir) continue;
        d.extra_attenuation_db += effect.extra_attenuation_db;
        double tx_delta = effect.tx_power_delta_db;
        if (effect.tx_decay_db_per_day != 0.0) {
          tx_delta -= effect.tx_decay_db_per_day *
                      common::to_days(now_ - fault.onset);
        }
        d.tx_power_dbm += tx_delta;
        survival *= 1.0 - effect.corruption_rate;
      }
    }
  }
  d.corruption_rate = 1.0 - survival;
}

}  // namespace corropt::faults
