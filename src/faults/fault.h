// A fault instance and its physical effects.
//
// A fault strikes one link (or, for shared-component failures, a bundle of
// co-located links) and perturbs per-direction optical power and
// corruption rates in the pattern characteristic of its root cause
// (Table 2). A fault also knows which repair actions eliminate it, which
// is the ground truth the repair simulator scores technicians against.
#pragma once

#include <vector>

#include "common/ids.h"
#include "common/time.h"
#include "faults/repair_action.h"
#include "faults/root_cause.h"

namespace corropt::faults {

using common::DirectionId;
using common::FaultId;
using common::LinkId;
using common::SimTime;

struct DirectionEffect {
  DirectionId direction;
  // Extra path loss on this direction (connector dirt, fiber bend).
  double extra_attenuation_db = 0.0;
  // Change to the transmitter's output power feeding this direction
  // (negative for decaying lasers).
  double tx_power_delta_db = 0.0;
  // Additional TxPower decay per simulated day (decaying transmitters
  // degrade gradually, Section 4 root cause 3).
  double tx_decay_db_per_day = 0.0;
  // Probability a packet on this direction is corrupted.
  double corruption_rate = 0.0;
};

struct Fault {
  FaultId id;  // Assigned by the injector.
  RootCause cause = RootCause::kConnectorContamination;
  // Affected links; more than one only for shared-component failures.
  std::vector<LinkId> links;
  std::vector<DirectionEffect> effects;
  // Repair actions that eliminate this fault; anything else fails.
  std::vector<RepairAction> fixing_actions;
  SimTime onset = 0;

  [[nodiscard]] bool fixed_by(RepairAction action) const {
    for (RepairAction fix : fixing_actions) {
      if (fix == action) return true;
    }
    return false;
  }

  // The highest corruption rate the fault induces on any direction.
  [[nodiscard]] double peak_corruption_rate() const {
    double peak = 0.0;
    for (const DirectionEffect& e : effects) {
      if (e.corruption_rate > peak) peak = e.corruption_rate;
    }
    return peak;
  }
};

}  // namespace corropt::faults
