// Generative models for each corruption root cause.
//
// The factory samples faults whose (a) relative frequency follows the
// Table 2 contribution mix, (b) loss rates follow the Table 1 corruption
// bucket distribution, and (c) optical symptoms follow the Table 2
// High/Low power signatures. These three marginals are everything the
// paper's algorithms observe, so matching them preserves the behaviour
// of the system under test even though the underlying hardware is
// synthetic (see DESIGN.md, substitution table).
#pragma once

#include <array>

#include "common/rng.h"
#include "faults/fault.h"
#include "telemetry/optical.h"
#include "topology/topology.h"

namespace corropt::faults {

struct FaultMixParams {
  // Root-cause mix. Values are normalized mid-points of the ranges in
  // Table 2 (17-57%, 14-48%, <1%, 6-45%, 10-26%).
  double p_contamination = 0.37;
  double p_damaged_fiber = 0.30;
  double p_decaying_transmitter = 0.008;
  double p_bad_transceiver = 0.21;
  double p_shared_component = 0.112;

  // Fraction of contamination faults that cause back reflections instead
  // of attenuation: RxPower stays high yet packets corrupt (Section 4,
  // root cause 1). These defeat power-based diagnosis and bound the
  // recommendation engine's accuracy below 100%.
  double p_back_reflection = 0.15;
  // Fraction of transceiver faults that are merely loose (fixed by
  // reseating) rather than bad (needing replacement).
  double p_loose = 0.6;

  // Fraction of damaged-fiber faults whose corruption exceeds the lossy
  // threshold in BOTH directions. Both RxPowers always drop (Figure 9),
  // but the paper observes only 8.2% of corrupting links corrupt
  // bidirectionally (Section 3) while fiber damage contributes 14-48% of
  // faults — so most damaged fibers must still decode one direction.
  double p_fiber_bidirectional = 0.25;

  // Table 1 corruption-column bucket weights for loss-rate sampling:
  // [1e-8,1e-5), [1e-5,1e-4), [1e-4,1e-3), [1e-3, max_loss_rate).
  std::array<double, 4> bucket_weights = {47.23, 18.43, 21.66, 12.67};
  double max_loss_rate = 2e-2;

  // Fault-induced attenuation ranges (dB). With the default optical tech
  // (nominal Rx -4 dBm, threshold -10 dBm) anything above 6 dB classifies
  // as Low.
  double min_attenuation_db = 8.0;
  double max_attenuation_db = 25.0;

  // TxPower drop range for decaying transmitters; chosen so both Tx and
  // the resulting Rx classify Low per Table 2.
  double min_tx_drop_db = 6.5;
  double max_tx_drop_db = 12.0;
  double tx_decay_db_per_day = 0.15;

  // Links hit by one shared-component failure when the link has no
  // breakout group (switch-backplane model).
  int shared_component_width = 4;
};

class FaultFactory {
 public:
  FaultFactory(const topology::Topology& topo, FaultMixParams params,
               common::Rng& rng);

  // Samples a root cause from the mix and builds a fault on `link`.
  // Shared-component faults extend to the link's breakout peers (or, when
  // ungrouped, to neighbouring uplinks of the same switch).
  [[nodiscard]] Fault make_random_fault(LinkId link, SimTime onset);

  // Builds a fault with a specific root cause (used by tests and the
  // case-study benches).
  [[nodiscard]] Fault make_fault(LinkId link, RootCause cause,
                                 SimTime onset);

  // Draws a loss rate from the Table 1 corruption bucket distribution.
  [[nodiscard]] double sample_loss_rate();

  [[nodiscard]] RootCause sample_root_cause();

  [[nodiscard]] const FaultMixParams& params() const { return params_; }

 private:
  using LinkDirection = topology::LinkDirection;

  [[nodiscard]] Fault make_contamination(LinkId link, SimTime onset);
  [[nodiscard]] Fault make_damaged_fiber(LinkId link, SimTime onset);
  [[nodiscard]] Fault make_decaying_transmitter(LinkId link, SimTime onset);
  [[nodiscard]] Fault make_bad_transceiver(LinkId link, SimTime onset);
  [[nodiscard]] Fault make_shared_component(LinkId link, SimTime onset);

  // Picks a uniformly random direction of `link`.
  [[nodiscard]] DirectionId random_direction(LinkId link);

  const topology::Topology* topo_;
  FaultMixParams params_;
  common::Rng* rng_;
};

}  // namespace corropt::faults
