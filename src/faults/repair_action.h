// Repair actions technicians can take on a corrupting link.
//
// These are the outputs of CorrOpt's recommendation engine (Algorithm 1)
// and the steps of the legacy root-cause-agnostic escalation sequence
// (Section 5.2). Transceiver actions are expressed relative to the
// corrupting direction: "local" is the receive side that observes the
// corruption, "remote" the transmit side feeding it.
#pragma once

#include <array>
#include <string_view>

namespace corropt::faults {

enum class RepairAction {
  kCleanFiber,
  kReplaceFiber,
  kReseatTransceiver,
  kReplaceTransceiver,
  kReplaceRemoteTransceiver,
  kReplaceSharedComponent,
};

inline constexpr std::array<RepairAction, 6> kAllRepairActions = {
    RepairAction::kCleanFiber,          RepairAction::kReplaceFiber,
    RepairAction::kReseatTransceiver,   RepairAction::kReplaceTransceiver,
    RepairAction::kReplaceRemoteTransceiver,
    RepairAction::kReplaceSharedComponent};

[[nodiscard]] constexpr std::string_view to_string(RepairAction action) {
  switch (action) {
    case RepairAction::kCleanFiber:
      return "clean-fiber";
    case RepairAction::kReplaceFiber:
      return "replace-cable/fiber";
    case RepairAction::kReseatTransceiver:
      return "reseat-transceiver";
    case RepairAction::kReplaceTransceiver:
      return "replace-transceiver";
    case RepairAction::kReplaceRemoteTransceiver:
      return "replace-transceiver-on-opposite-side";
    case RepairAction::kReplaceSharedComponent:
      return "replace-shared-component";
  }
  return "unknown";
}

}  // namespace corropt::faults
