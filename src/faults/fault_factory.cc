#include "faults/fault_factory.h"

#include <algorithm>
#include <cassert>

namespace corropt::faults {

using topology::LinkDirection;

FaultFactory::FaultFactory(const topology::Topology& topo,
                           FaultMixParams params, common::Rng& rng)
    : topo_(&topo), params_(params), rng_(&rng) {}

RootCause FaultFactory::sample_root_cause() {
  const std::array<double, 5> weights = {
      params_.p_contamination, params_.p_damaged_fiber,
      params_.p_decaying_transmitter, params_.p_bad_transceiver,
      params_.p_shared_component};
  return kAllRootCauses[rng_->weighted_index(weights)];
}

double FaultFactory::sample_loss_rate() {
  static constexpr std::array<double, 5> kEdges = {1e-8, 1e-5, 1e-4, 1e-3,
                                                   0.0};
  const std::size_t bucket = rng_->weighted_index(params_.bucket_weights);
  const double lo = kEdges[bucket];
  const double hi =
      bucket + 1 < 4 ? kEdges[bucket + 1] : params_.max_loss_rate;
  return rng_->log_uniform(lo, hi);
}

DirectionId FaultFactory::random_direction(LinkId link) {
  return topology::direction_id(
      link, rng_->bernoulli(0.5) ? LinkDirection::kUp : LinkDirection::kDown);
}

Fault FaultFactory::make_random_fault(LinkId link, SimTime onset) {
  return make_fault(link, sample_root_cause(), onset);
}

Fault FaultFactory::make_fault(LinkId link, RootCause cause, SimTime onset) {
  switch (cause) {
    case RootCause::kConnectorContamination:
      return make_contamination(link, onset);
    case RootCause::kDamagedFiber:
      return make_damaged_fiber(link, onset);
    case RootCause::kDecayingTransmitter:
      return make_decaying_transmitter(link, onset);
    case RootCause::kBadOrLooseTransceiver:
      return make_bad_transceiver(link, onset);
    case RootCause::kSharedComponent:
      return make_shared_component(link, onset);
  }
  assert(false && "unreachable");
  return {};
}

Fault FaultFactory::make_contamination(LinkId link, SimTime onset) {
  Fault fault;
  fault.cause = RootCause::kConnectorContamination;
  fault.links = {link};
  fault.onset = onset;
  fault.fixing_actions = {RepairAction::kCleanFiber,
                          RepairAction::kReplaceFiber};

  DirectionEffect effect;
  effect.direction = random_direction(link);
  effect.corruption_rate = sample_loss_rate();
  if (!rng_->bernoulli(params_.p_back_reflection)) {
    // Ordinary contamination: attenuation drops RxPower on the dirty
    // direction; the back-reflection variant keeps RxPower high.
    effect.extra_attenuation_db =
        rng_->uniform(params_.min_attenuation_db, params_.max_attenuation_db);
  }
  fault.effects = {effect};
  return fault;
}

Fault FaultFactory::make_damaged_fiber(LinkId link, SimTime onset) {
  Fault fault;
  fault.cause = RootCause::kDamagedFiber;
  fault.links = {link};
  fault.onset = onset;
  fault.fixing_actions = {RepairAction::kReplaceFiber};

  // A bend leaks signal in both directions at once (Figure 9): both
  // RxPowers drop together. Corruption crosses the lossy threshold in
  // both directions only for a minority of bends; usually one receiver
  // still decodes (see FaultMixParams::p_fiber_bidirectional).
  const double attenuation =
      rng_->uniform(params_.min_attenuation_db, params_.max_attenuation_db);
  const double base_rate = sample_loss_rate();
  const bool bidirectional = rng_->bernoulli(params_.p_fiber_bidirectional);
  const LinkDirection primary =
      rng_->bernoulli(0.5) ? LinkDirection::kUp : LinkDirection::kDown;
  for (LinkDirection dir : {LinkDirection::kUp, LinkDirection::kDown}) {
    DirectionEffect effect;
    effect.direction = topology::direction_id(link, dir);
    effect.extra_attenuation_db = attenuation * rng_->uniform(0.9, 1.1);
    if (dir == primary || bidirectional) {
      // Clamp above the lossy threshold so monitoring always notices the
      // corrupting directions this fault is meant to create.
      effect.corruption_rate =
          std::max(1e-8, base_rate * rng_->uniform(0.8, 1.25));
    }
    fault.effects.push_back(effect);
  }
  return fault;
}

Fault FaultFactory::make_decaying_transmitter(LinkId link, SimTime onset) {
  Fault fault;
  fault.cause = RootCause::kDecayingTransmitter;
  fault.links = {link};
  fault.onset = onset;
  fault.fixing_actions = {RepairAction::kReplaceRemoteTransceiver};

  DirectionEffect effect;
  effect.direction = random_direction(link);
  effect.tx_power_delta_db =
      -rng_->uniform(params_.min_tx_drop_db, params_.max_tx_drop_db);
  effect.tx_decay_db_per_day = params_.tx_decay_db_per_day;
  effect.corruption_rate = sample_loss_rate();
  fault.effects = {effect};
  return fault;
}

Fault FaultFactory::make_bad_transceiver(LinkId link, SimTime onset) {
  Fault fault;
  fault.cause = RootCause::kBadOrLooseTransceiver;
  fault.links = {link};
  fault.onset = onset;
  if (rng_->bernoulli(params_.p_loose)) {
    fault.fixing_actions = {RepairAction::kReseatTransceiver,
                            RepairAction::kReplaceTransceiver};
  } else {
    fault.fixing_actions = {RepairAction::kReplaceTransceiver};
  }

  // Powers stay healthy; decoding fails anyway (Section 4, root cause 4).
  DirectionEffect effect;
  effect.direction = random_direction(link);
  effect.corruption_rate = sample_loss_rate();
  fault.effects = {effect};
  return fault;
}

Fault FaultFactory::make_shared_component(LinkId link, SimTime onset) {
  Fault fault;
  fault.cause = RootCause::kSharedComponent;
  fault.onset = onset;
  fault.fixing_actions = {RepairAction::kReplaceSharedComponent};

  // A breakout-cable fault strikes the whole bundle; a backplane fault
  // strikes a run of uplinks on the same switch.
  std::vector<LinkId> affected = topo_->breakout_peers(link);
  if (affected.size() < 2) {
    affected = {link};
    const auto& uplinks = topo_->switch_at(topo_->link_at(link).lower).uplinks;
    for (LinkId sibling : uplinks) {
      if (sibling == link) continue;
      affected.push_back(sibling);
      if (static_cast<int>(affected.size()) >=
          params_.shared_component_width) {
        break;
      }
    }
  }
  fault.links = affected;

  // Co-located links corrupt with similar loss rates (Section 4, root
  // cause 5) and healthy optics.
  const double base_rate = sample_loss_rate();
  for (LinkId affected_link : affected) {
    DirectionEffect effect;
    effect.direction =
        topology::direction_id(affected_link, LinkDirection::kUp);
    effect.corruption_rate =
        std::max(1e-8, base_rate * rng_->uniform(0.8, 1.25));
    fault.effects.push_back(effect);
  }
  return fault;
}

}  // namespace corropt::faults
