// Applies faults to the network's physical state and tracks them.
//
// The injector is the single writer of fault-induced perturbations in
// NetworkState: injecting a fault adds its per-direction effects, clearing
// it (after a successful repair) removes them. Multiple concurrent faults
// on one direction compose: attenuations and TxPower deltas add, and
// corruption rates combine as independent drop processes.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/snapshot.h"
#include "common/time.h"
#include "faults/fault.h"
#include "telemetry/network_state.h"

namespace corropt::faults {

class FaultInjector {
 public:
  explicit FaultInjector(telemetry::NetworkState& state);

  // Applies the fault's effects and returns its assigned id.
  FaultId inject(Fault fault);

  // Removes the fault and its effects. No-op for unknown/cleared ids.
  void clear(FaultId id);

  // Attempts a repair action against the fault: if the action is in the
  // fault's fixing set, the fault is cleared and true is returned;
  // otherwise the fault persists and false is returned.
  bool try_repair(FaultId id, RepairAction action);

  // Progresses time-dependent effects (decaying transmitters) to `now`.
  void advance(common::SimTime now);

  [[nodiscard]] const Fault* fault(FaultId id) const;
  // Ids of active faults affecting `link`, in injection order.
  [[nodiscard]] std::vector<FaultId> faults_on_link(LinkId link) const;
  [[nodiscard]] std::size_t active_fault_count() const {
    return active_.size();
  }
  // All active faults, in increasing fault-id (== injection) order.
  // The order is load-bearing: the penalty accountant folds these
  // faults' links into a floating-point sum and the detection pipeline
  // builds its suspect set from them, so an unspecified (hash-map)
  // order would make results depend on container history — exactly the
  // hidden state a checkpoint restore cannot reproduce.
  [[nodiscard]] std::vector<const Fault*> active_faults() const;

  // Checkpointing (DESIGN.md §14): active faults (id order), the id
  // counter and the decay clock. `by_direction_` is rebuilt (id order ==
  // injection order, which erase preserves); the physical state arrays
  // are NetworkState's to serialize, so restore does not rebuild them.
  void snapshot_to(common::snap::Writer& w) const;
  void restore_from(common::snap::Reader& r);

 private:
  // Recomputes the physical state of one direction from scratch by
  // folding in every active effect that targets it.
  void rebuild_direction(DirectionId dir);

  telemetry::NetworkState* state_;
  std::unordered_map<FaultId, Fault> active_;
  // Direction -> ids of active faults with an effect on it.
  std::unordered_map<DirectionId, std::vector<FaultId>> by_direction_;
  common::FaultId::underlying_type next_id_ = 0;
  common::SimTime now_ = 0;
};

}  // namespace corropt::faults
