// corropt_ctl: an operator-style command-line front end to the library.
//
//   corropt_ctl gen (medium|large|fat <k>)            > topo.csv
//   corropt_ctl stats <topo.csv>
//   corropt_ctl plan <topo.csv> <capacity%> <link:rate> [link:rate ...]
//   corropt_ctl wcmp <topo.csv> [switch-id]
//
// `gen` emits a topology file; `stats` summarizes one; `plan` runs the
// CorrOpt decision pipeline (fast checker per link, then the global
// optimizer) against a set of corrupting links and prints the disable
// plan; `wcmp` prints load-balancing weights for the (possibly degraded)
// topology in the file.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "corropt/fast_checker.h"
#include "corropt/optimizer.h"
#include "corropt/path_counter.h"
#include "corropt/routing.h"
#include "topology/fat_tree.h"
#include "topology/io.h"

namespace {

using namespace corropt;

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  corropt_ctl gen (medium|large|fat <k>)\n"
      "  corropt_ctl stats <topo.csv>\n"
      "  corropt_ctl plan <topo.csv> <capacity%%> <link:rate> [...] "
      "[save=<out.csv>]\n"
      "  corropt_ctl wcmp <topo.csv> [switch-id]\n");
  return 2;
}

std::optional<topology::Topology> load(const char* path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return std::nullopt;
  }
  std::string error;
  auto topo = topology::read_topology(in, &error);
  if (!topo.has_value()) {
    std::fprintf(stderr, "bad topology file: %s\n", error.c_str());
  }
  return topo;
}

int cmd_gen(int argc, char** argv) {
  if (argc < 1) return usage();
  topology::Topology topo;
  if (std::strcmp(argv[0], "medium") == 0) {
    topo = topology::build_medium_dcn();
  } else if (std::strcmp(argv[0], "large") == 0) {
    topo = topology::build_large_dcn();
  } else if (std::strcmp(argv[0], "fat") == 0 && argc >= 2) {
    topo = topology::build_fat_tree(std::atoi(argv[1]));
  } else {
    return usage();
  }
  topology::write_topology(std::cout, topo);
  return 0;
}

int cmd_stats(int argc, char** argv) {
  if (argc < 1) return usage();
  const auto topo = load(argv[0]);
  if (!topo.has_value()) return 1;
  std::printf("switches: %zu across %d levels\n", topo->switch_count(),
              topo->level_count());
  for (int level = 0; level < topo->level_count(); ++level) {
    std::printf("  level %d: %zu switches\n", level,
                topo->switches_at_level(level).size());
  }
  std::printf("links: %zu (%zu enabled)\n", topo->link_count(),
              topo->enabled_link_count());
  core::PathCounter counter(*topo);
  const auto counts = counter.up_paths();
  double worst = 1.0;
  for (common::SwitchId tor : topo->tors()) {
    const auto design = counter.design_paths()[tor.index()];
    if (design == 0) continue;
    worst = std::min(worst, static_cast<double>(counts[tor.index()]) /
                                static_cast<double>(design));
  }
  std::printf("worst ToR path fraction: %.1f%%\n", worst * 100.0);
  return 0;
}

int cmd_plan(int argc, char** argv) {
  if (argc < 3) return usage();
  auto topo = load(argv[0]);
  if (!topo.has_value()) return 1;
  const double capacity = std::atof(argv[1]) / 100.0;
  if (capacity <= 0.0 || capacity > 1.0) {
    std::fprintf(stderr, "capacity must be in (0, 100]\n");
    return 2;
  }
  // Optional trailing "save=<path>": write the degraded topology back
  // out so `wcmp`/`stats` can be run on the post-plan state.
  const char* save_path = nullptr;
  if (std::strncmp(argv[argc - 1], "save=", 5) == 0) {
    save_path = argv[argc - 1] + 5;
    --argc;
  }
  core::CapacityConstraint constraint(capacity);
  core::CorruptionSet corruption;
  for (int i = 2; i < argc; ++i) {
    const char* colon = std::strchr(argv[i], ':');
    if (colon == nullptr) return usage();
    const auto id = static_cast<common::LinkId::underlying_type>(
        std::strtoul(argv[i], nullptr, 10));
    if (id >= topo->link_count()) {
      std::fprintf(stderr, "unknown link %u\n", id);
      return 2;
    }
    corruption.mark(common::LinkId(id), std::atof(colon + 1));
  }

  std::printf("plan for %zu corrupting links, capacity constraint "
              "%.0f%%:\n",
              corruption.size(), capacity * 100.0);
  // Phase 1: the fast checker, per link in detection order (as the
  // controller would have run it online).
  core::FastChecker checker(*topo, constraint);
  for (common::LinkId link : corruption.active_in_detection_order(*topo)) {
    const bool disabled = checker.try_disable(link);
    std::printf("  fast checker: link %-6u rate %.2e -> %s\n", link.value(),
                corruption.rate(link),
                disabled ? "DISABLE" : "keep (capacity)");
  }
  // Phase 2: the optimizer over whatever is left.
  core::Optimizer optimizer(*topo, constraint,
                            core::PenaltyFunction::linear());
  const core::OptimizerResult result = optimizer.run(corruption);
  for (common::LinkId link : result.disabled) {
    std::printf("  optimizer:    link %-6u rate %.2e -> DISABLE\n",
                link.value(), corruption.rate(link));
  }
  std::printf(
      "residual corruption penalty: %.3e/s over %zu still-active links\n",
      result.remaining_penalty, corruption.active(*topo).size());
  core::PathCounter counter(*topo);
  std::printf("network remains feasible: %s\n",
              counter.feasible(counter.up_paths(), constraint) ? "yes"
                                                               : "NO");
  if (save_path != nullptr) {
    std::ofstream out(save_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", save_path);
      return 1;
    }
    topology::write_topology(out, *topo);
    std::printf("degraded topology written to %s\n", save_path);
  }
  return 0;
}

int cmd_wcmp(int argc, char** argv) {
  if (argc < 1) return usage();
  const auto topo = load(argv[0]);
  if (!topo.has_value()) return 1;
  core::PathCounter counter(*topo);
  const core::WcmpTable table = core::compute_wcmp(*topo, counter);
  if (argc >= 2) {
    const auto id = static_cast<common::SwitchId::underlying_type>(
        std::strtoul(argv[1], nullptr, 10));
    if (id >= topo->switch_count()) {
      std::fprintf(stderr, "unknown switch %u\n", id);
      return 2;
    }
    for (const core::UplinkWeight& uplink : table.weights[id]) {
      std::printf("switch %u link %u weight %.4f\n", id,
                  uplink.link.value(), uplink.weight);
    }
    return 0;
  }
  std::printf("max link overload vs intact-balanced baseline: %.3fx\n",
              core::max_link_overload(*topo, table));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  if (command == "gen") return cmd_gen(argc - 2, argv + 2);
  if (command == "stats") return cmd_stats(argc - 2, argv + 2);
  if (command == "plan") return cmd_plan(argc - 2, argv + 2);
  if (command == "wcmp") return cmd_wcmp(argc - 2, argv + 2);
  return usage();
}
