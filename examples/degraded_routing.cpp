// degraded_routing: load balancing atop CorrOpt (Section 8).
//
// CorrOpt makes the topology asymmetric by disabling corrupting links.
// This example corrupts a burst of links in one pod, lets CorrOpt
// disable what it safely can, then derives WCMP weights from the same
// path counts the fast checker maintains and compares the resulting
// worst-link load against naive ECMP that ignores the degradation.
//
// It also shows checkpointing: the degraded topology is serialized and
// re-loaded, and the weights recomputed from the checkpoint match.
//
// Run: ./build/examples/degraded_routing

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/rng.h"
#include "corropt/controller.h"
#include "corropt/path_counter.h"
#include "corropt/routing.h"
#include "topology/fat_tree.h"
#include "topology/io.h"

int main() {
  using namespace corropt;

  topology::Topology topo = topology::build_fat_tree(8);
  core::ControllerConfig config;
  config.capacity_fraction = 0.5;
  core::Controller controller(topo, config);

  // A bad fiber tray: several corrupting links concentrated on one pod.
  common::Rng rng(3);
  const auto tor = topo.tors().front();
  std::size_t disabled = 0;
  for (common::LinkId uplink : topo.switch_at(tor).uplinks) {
    disabled += controller.on_corruption_detected(
        uplink, rng.log_uniform(1e-5, 1e-3));
  }
  // ...and a decaying line card thinning one aggregation switch of a
  // different pod: its spine uplinks corrupt and get disabled, leaving
  // that subtree with fewer paths than its siblings.
  const auto other_tor = topo.tors()[2];
  const auto agg = topo.link_at(topo.switch_at(other_tor).uplinks[0]).upper;
  for (int i = 0; i < 2; ++i) {
    disabled += controller.on_corruption_detected(
        topo.switch_at(agg).uplinks[static_cast<std::size_t>(i)],
        rng.log_uniform(1e-5, 1e-3));
  }
  std::printf("corruption reported on 6 links; CorrOpt disabled %zu "
              "(capacity constraint 50%%)\n",
              disabled);

  core::PathCounter counter(topo);
  const core::WcmpTable wcmp = core::compute_wcmp(topo, counter);
  std::printf("\nWCMP weights at ToR %s (one agg subtree thinned):\n",
              topo.switch_at(other_tor).name.c_str());
  for (const core::UplinkWeight& uplink :
       wcmp.weights[other_tor.index()]) {
    std::printf("  link %4u -> %-8s weight %.3f\n", uplink.link.value(),
                topo.switch_at(topo.link_at(uplink.link).upper).name.c_str(),
                uplink.weight);
  }

  // Naive ECMP over the enabled links, ignoring subtree thinning.
  core::WcmpTable ecmp;
  ecmp.weights.resize(topo.switch_count());
  for (const auto& sw : topo.switches()) {
    std::vector<common::LinkId> active;
    for (common::LinkId link : sw.uplinks) {
      if (topo.is_enabled(link)) active.push_back(link);
    }
    for (common::LinkId link : active) {
      ecmp.weights[sw.id.index()].push_back(
          {link, 1.0 / static_cast<double>(active.size())});
    }
  }
  std::printf("\nworst-link overload vs intact-balanced baseline:\n");
  std::printf("  naive ECMP: %.2fx\n",
              core::max_link_overload(topo, ecmp));
  std::printf("  WCMP:       %.2fx\n",
              core::max_link_overload(topo, wcmp));

  // The difference shows on the thinned aggregation switch: ECMP keeps
  // sending a full share into the subtree, overloading its two surviving
  // spine links; WCMP steers traffic around it.
  const auto ecmp_traffic = core::compute_link_traffic(topo, ecmp);
  const auto wcmp_traffic = core::compute_link_traffic(topo, wcmp);
  double ecmp_hot = 0.0, wcmp_hot = 0.0;
  for (common::LinkId uplink : topo.switch_at(agg).uplinks) {
    if (!topo.is_enabled(uplink)) continue;
    ecmp_hot = std::max(ecmp_hot, ecmp_traffic[uplink.index()]);
    wcmp_hot = std::max(wcmp_hot, wcmp_traffic[uplink.index()]);
  }
  std::printf(
      "hottest surviving spine uplink of the thinned agg (intact-balanced "
      "carries %.3f):\n  naive ECMP: %.3f\n  WCMP:       %.3f\n",
      1.0 / 4.0, ecmp_hot, wcmp_hot);

  // Checkpoint the degraded state and reload it.
  std::stringstream checkpoint;
  topology::write_topology(checkpoint, topo);
  const auto restored = topology::read_topology(checkpoint);
  if (!restored.has_value()) {
    std::printf("checkpoint reload failed\n");
    return 1;
  }
  core::PathCounter restored_counter(*restored);
  const core::WcmpTable restored_wcmp =
      core::compute_wcmp(*restored, restored_counter);
  const bool identical =
      restored_wcmp.weights[other_tor.index()].size() ==
      wcmp.weights[other_tor.index()].size();
  std::printf("\ncheckpoint round-trip: %zu switches, %zu links, weights "
              "match: %s\n",
              restored->switch_count(), restored->link_count(),
              identical ? "yes" : "no");
  return 0;
}
