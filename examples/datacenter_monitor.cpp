// datacenter_monitor: a month of DCN operations under CorrOpt.
//
// Simulates 30 days of corruption faults on a pod-scale fat-tree, drives
// the full detect -> disable -> ticket -> repair -> re-enable pipeline,
// and prints a daily operations digest: penalty rate, links disabled,
// open tickets, and the worst ToR's available capacity — the view an
// on-call network engineer would want on a dashboard.
//
// Run: ./build/examples/datacenter_monitor [k] [capacity%] [faults/link/day]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/rng.h"
#include "sim/mitigation_sim.h"
#include "topology/fat_tree.h"
#include "trace/trace.h"

int main(int argc, char** argv) {
  using namespace corropt;

  const int k = argc > 1 ? std::atoi(argv[1]) : 16;
  const double capacity = argc > 2 ? std::atof(argv[2]) / 100.0 : 0.75;
  const double fault_rate = argc > 3 ? std::atof(argv[3]) : 0.004;

  topology::Topology topo = topology::build_fat_tree(k);
  std::printf(
      "monitoring a k=%d fat-tree: %zu links, capacity constraint %.0f%%\n",
      k, topo.link_count(), capacity * 100.0);

  common::Rng rng(2026);
  trace::TraceParams trace_params;
  trace_params.duration = 30 * common::kDay;
  trace_params.faults_per_link_per_day = fault_rate;
  const auto events =
      trace::CorruptionTraceGenerator(topo, trace_params, rng).generate();
  std::printf("synthesized %zu corruption faults over 30 days\n\n",
              events.size());

  sim::ScenarioConfig config;
  config.mode = core::CheckerMode::kCorrOpt;
  config.capacity_fraction = capacity;
  config.duration = trace_params.duration;
  config.capacity_sample_interval = common::kHour;
  config.seed = 11;
  sim::MitigationSimulation sim(topo, config);
  const sim::SimulationMetrics metrics = sim.run(events);

  // Daily digest from the recorded series.
  std::printf("%5s %16s %14s %12s\n", "day", "mean penalty/s",
              "worst ToR cap", "links off");
  std::size_t sample_index = 0;
  for (int day = 0; day < 30; ++day) {
    const common::SimTime end = (day + 1) * static_cast<common::SimTime>(
                                                common::kDay);
    double worst = 1.0;
    double links_off = 0.0;
    while (sample_index < metrics.worst_tor_fraction.size() &&
           metrics.worst_tor_fraction[sample_index].time < end) {
      worst = std::min(worst,
                       metrics.worst_tor_fraction[sample_index].value);
      links_off = metrics.disabled_links[sample_index].value;
      ++sample_index;
    }
    double day_penalty = 0.0;
    for (int h = 0; h < 24; ++h) {
      const std::size_t bin = static_cast<std::size_t>(day) * 24 + h;
      if (bin < metrics.hourly_penalty.size()) {
        day_penalty += metrics.hourly_penalty[bin];
      }
    }
    std::printf("%5d %16.3e %13.1f%% %12.0f\n", day + 1,
                day_penalty / common::kDay, worst * 100.0, links_off);
  }

  std::printf("\n30-day summary\n");
  std::printf("  faults injected:          %zu\n", metrics.faults_injected);
  std::printf("  tickets opened:           %zu\n", metrics.tickets_opened);
  std::printf("  repair attempts:          %zu\n", metrics.repair_attempts);
  std::printf("  first-attempt accuracy:   %.0f%%\n",
              metrics.first_attempt_accuracy() * 100.0);
  std::printf("  integrated penalty:       %.3e\n",
              metrics.integrated_penalty);
  std::printf("  mean ToR capacity:        %.2f%%\n",
              metrics.mean_tor_fraction * 100.0);
  std::printf("  corrupting links kept on: %zu\n",
              metrics.undisabled_detections);
  return 0;
}
