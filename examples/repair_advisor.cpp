// repair_advisor: the operator-facing view of CorrOpt's recommendation
// engine (Section 5.2).
//
// Generates a batch of corrupting links with randomly drawn root causes,
// then prints each maintenance ticket the way the deployed engine renders
// it: the link, its optical readings classified High/Low against the
// technology thresholds, the recommended action and the rationale —
// followed by whether the recommendation would actually have fixed the
// underlying fault (known here because the faults are synthetic).
//
// Run: ./build/examples/repair_advisor [tickets] [seed]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/rng.h"
#include "corropt/recommendation.h"
#include "faults/fault_factory.h"
#include "faults/injector.h"
#include "telemetry/network_state.h"
#include "topology/fat_tree.h"

namespace {

const char* power_class(bool low) { return low ? "LOW " : "HIGH"; }

}  // namespace

int main(int argc, char** argv) {
  using namespace corropt;

  const int tickets = argc > 1 ? std::atoi(argv[1]) : 8;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                      : 2017;

  topology::Topology topo = topology::build_fat_tree(16);
  telemetry::NetworkState state(topo, telemetry::default_tech());
  faults::FaultInjector injector(state);
  common::Rng rng(seed);
  faults::FaultFactory factory(topo, {}, rng);
  core::RecommendationEngine engine(state);

  int correct = 0;
  for (int t = 0; t < tickets; ++t) {
    const common::LinkId link(static_cast<common::LinkId::underlying_type>(
        rng.uniform_index(topo.link_count())));
    if (!injector.faults_on_link(link).empty()) continue;
    const common::FaultId fault_id =
        injector.inject(factory.make_random_fault(link, 0));
    const faults::Fault* fault = injector.fault(fault_id);

    const auto up = topology::direction_id(link, topology::LinkDirection::kUp);
    const auto down =
        topology::direction_id(link, topology::LinkDirection::kDown);

    std::printf("== ticket %d: link %u (%s -> %s) ==\n", t + 1, link.value(),
                topo.switch_at(topo.link_at(link).lower).name.c_str(),
                topo.switch_at(topo.link_at(link).upper).name.c_str());
    std::printf("   corruption: up %.2e / down %.2e\n",
                state.corruption_rate(up), state.corruption_rate(down));
    std::printf("   optics: Tx %s (%+.1f dBm) -> Rx %s (%+.1f dBm)\n",
                power_class(state.tx_is_low(up)), state.tx_power_dbm(up),
                power_class(state.rx_is_low(up)), state.rx_power_dbm(up));
    std::printf("           Rx %s (%+.1f dBm) <- Tx %s (%+.1f dBm)\n",
                power_class(state.rx_is_low(down)), state.rx_power_dbm(down),
                power_class(state.tx_is_low(down)), state.tx_power_dbm(down));

    const core::Recommendation rec = engine.recommend_link(link, false);
    std::printf("   recommendation: %s\n",
                std::string(faults::to_string(rec.action)).c_str());
    std::printf("   rationale:      %s\n", rec.rationale.c_str());

    const bool would_fix = fault->fixed_by(rec.action);
    correct += would_fix;
    std::printf("   ground truth:   %s  -> recommendation %s\n\n",
                std::string(faults::to_string(fault->cause)).c_str(),
                would_fix ? "fixes it" : "would NOT fix it");
    injector.clear(fault_id);  // Next ticket sees a clean network.
  }
  std::printf("recommendation would fix the fault on the first visit for "
              "%d of %d tickets\n",
              correct, tickets);
  return 0;
}
