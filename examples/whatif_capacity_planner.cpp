// whatif_capacity_planner: pick a capacity constraint with data.
//
// The per-ToR capacity constraint trades corruption protection against
// retained network capacity (Section 7.1, Figure 17): a lax constraint
// lets CorrOpt disable every corrupting link; a tight one forces some to
// stay in service. This tool sweeps the constraint over a synthetic
// quarter of faults and prints the frontier — integrated corruption
// penalty, links that could not be disabled, and average ToR capacity —
// so an operator can choose c for their risk tolerance.
//
// Run: ./build/examples/whatif_capacity_planner [k] [faults/link/day]

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/rng.h"
#include "sim/mitigation_sim.h"
#include "topology/fat_tree.h"
#include "trace/trace.h"

int main(int argc, char** argv) {
  using namespace corropt;

  const int k = argc > 1 ? std::atoi(argv[1]) : 16;
  const double fault_rate = argc > 2 ? std::atof(argv[2]) : 0.006;

  const common::SimDuration duration = 90 * common::kDay;
  std::printf("capacity planning on a k=%d fat-tree, %.4f faults/link/day, "
              "90 days\n\n",
              k, fault_rate);
  std::printf("%10s %18s %16s %14s %14s\n", "constraint",
              "integrated penalty", "kept corrupting", "mean ToR cap",
              "worst ToR cap");

  for (const double c : {0.25, 0.50, 0.65, 0.75, 0.85, 0.90}) {
    topology::Topology topo = topology::build_fat_tree(k);
    common::Rng rng(99);  // Same trace for every constraint.
    trace::TraceParams trace_params;
    trace_params.duration = duration;
    trace_params.faults_per_link_per_day = fault_rate;
    const auto events =
        trace::CorruptionTraceGenerator(topo, trace_params, rng).generate();

    sim::ScenarioConfig config;
    config.mode = core::CheckerMode::kCorrOpt;
    config.capacity_fraction = c;
    config.duration = duration;
    config.seed = 7;
    sim::MitigationSimulation sim(topo, config);
    const sim::SimulationMetrics metrics = sim.run(events);

    double worst = 1.0;
    for (const sim::TimePoint& p : metrics.worst_tor_fraction) {
      worst = std::min(worst, p.value);
    }
    std::printf("%9.0f%% %18.4e %16zu %13.2f%% %13.2f%%\n", c * 100.0,
                metrics.integrated_penalty, metrics.undisabled_detections,
                metrics.mean_tor_fraction * 100.0, worst * 100.0);
  }

  std::printf(
      "\nreading the frontier: raising the constraint preserves capacity\n"
      "but keeps more corrupting links in service; the paper operates at\n"
      "50-75%% (Section 5.1).\n");
  return 0;
}
