// Quickstart: the CorrOpt pipeline end to end on a small fat-tree.
//
//   1. Build a k=8 fat-tree (256 switch-to-switch optical links).
//   2. Inject a connector-contamination fault on one link.
//   3. Let the controller detect it, decide whether disabling is safe,
//      and produce a repair recommendation for the ticket.
//   4. Repair the link and watch the controller re-enable it.
//
// Build: cmake -B build -G Ninja && cmake --build build
// Run:   ./build/examples/quickstart

#include <cstdio>

#include "common/rng.h"
#include "corropt/controller.h"
#include "corropt/recommendation.h"
#include "faults/fault_factory.h"
#include "faults/injector.h"
#include "telemetry/network_state.h"
#include "topology/fat_tree.h"

int main() {
  using namespace corropt;

  // 1. The network.
  topology::Topology topo = topology::build_fat_tree(8);
  std::printf("topology: %zu switches, %zu optical links, %d levels\n",
              topo.switch_count(), topo.link_count(), topo.level_count());

  // Physical state (optics + counters) and the CorrOpt controller with a
  // 75%% per-ToR capacity constraint.
  telemetry::NetworkState state(topo, telemetry::default_tech());
  core::ControllerConfig config;
  config.mode = core::CheckerMode::kCorrOpt;
  config.capacity_fraction = 0.75;
  core::Controller controller(topo, config);
  controller.set_ticket_callback([](common::LinkId link) {
    std::printf("  -> maintenance ticket issued for link %u\n", link.value());
  });

  // 2. A dirty connector starts corrupting packets on link 42.
  common::Rng rng(7);
  faults::FaultMixParams mix;
  mix.p_back_reflection = 0.0;
  faults::FaultFactory factory(topo, mix, rng);
  faults::FaultInjector injector(state);
  const common::LinkId link(42);
  const common::FaultId fault = injector.inject(factory.make_fault(
      link, faults::RootCause::kConnectorContamination, 0));

  const double rate = state.link_corruption_rate(link);
  std::printf("\nlink %u corrupting at loss rate %.2e\n", link.value(), rate);

  // 3. Detection: the fast checker verifies every ToR keeps >= 75% of its
  // spine paths with the link off, then disables it.
  const bool disabled = controller.on_corruption_detected(link, rate);
  std::printf("fast checker decision: %s\n",
              disabled ? "safe to disable -- link disabled"
                       : "kept active (capacity constraint)");

  // The recommendation engine reads the optical symptoms (Algorithm 1).
  core::RecommendationEngine engine(state);
  const core::Recommendation rec = engine.recommend_link(link, false);
  std::printf("repair recommendation: %s\n  rationale: %s\n",
              std::string(faults::to_string(rec.action)).c_str(),
              rec.rationale.c_str());

  // 4. The technician cleans the fiber; corruption is gone and the
  // controller re-enables the link (and re-optimizes globally).
  const bool fixed = injector.try_repair(fault, rec.action);
  std::printf("\nrepair with recommended action: %s\n",
              fixed ? "success" : "failed");
  controller.on_link_repaired(link);
  std::printf("link %u enabled again: %s\n", link.value(),
              topo.is_enabled(link) ? "yes" : "no");
  std::printf("active corruption penalty: %g\n", controller.active_penalty());
  return 0;
}
